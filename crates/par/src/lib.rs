//! vt-par: a deterministic, std-only thread pool for the simulator.
//!
//! The container the simulator builds in is offline, so this crate
//! deliberately has **zero dependencies**: a fixed set of persistent
//! worker threads, a condvar-based fork/join protocol, and an atomic
//! work-stealing index. Two usage shapes are exported:
//!
//! * [`Pool::run`] — index-parallel fork/join. Every call hands the pool
//!   a closure over `0..items`; which thread executes which index is
//!   *not* deterministic, so callers must only touch disjoint state per
//!   index (see [`DisjointMut`]) and establish ordering themselves when
//!   merging. The simulator's per-cycle SM phase uses this.
//! * [`sweep`] — deterministic job fan-out: a vector of independent
//!   closures whose results are collected *by index*, so the output is
//!   identical no matter how the jobs were interleaved. The kernel×arch
//!   experiment grid uses this.
//!
//! Determinism contract: neither primitive makes results depend on
//! scheduling. `Pool::run` guarantees every index runs exactly once and
//! all effects are visible to the caller when it returns; `sweep`
//! additionally orders results positionally. A pool with one thread
//! (or a single-item `run`) executes inline on the caller with no
//! synchronization at all — `threads == 1` is exactly the sequential
//! code path.

#![deny(unsafe_op_in_unsafe_fn)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Payload of the first panic observed during a [`Pool::run`] call; it is
/// re-raised on the calling thread once all workers have quiesced.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// State shared between the pool owner and its worker threads, guarded by
/// the mutex half of the fork/join protocol.
struct Shared {
    /// Incremented once per `run` call; workers sleep until it changes.
    epoch: u64,
    /// The job of the current epoch. `None` outside `run`. The `'static`
    /// lifetime is a lie told by `Pool::run`, which transmutes a stack
    /// borrow; soundness comes from `run` not returning until `active`
    /// drops to zero, after which no worker dereferences the pointer.
    job: Option<&'static JobFn>,
    /// Workers still executing the current epoch's job.
    active: usize,
    /// Set by `Drop` to terminate the worker loops.
    shutdown: bool,
}

type JobFn = dyn Fn(usize) + Sync;

struct Inner {
    state: Mutex<Shared>,
    /// Signals workers that a new epoch (or shutdown) is available.
    go: Condvar,
    /// Signals the owner that `active` reached zero.
    done: Condvar,
    /// Next unclaimed item index of the current epoch.
    next: AtomicUsize,
    /// Item count of the current epoch.
    total: AtomicUsize,
    /// First panic payload observed this epoch, if any.
    panic: Mutex<Option<PanicPayload>>,
}

impl Inner {
    /// Claims and runs items until the index range is exhausted or a
    /// panic is captured. Returns `true` if a panic was captured.
    fn drain(&self, job: &JobFn) -> bool {
        let total = self.total.load(Ordering::Acquire);
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                return false;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(i))) {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                return true;
            }
        }
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// `Pool::new(n)` spawns `n - 1` workers; the calling thread participates
/// in every `run`, so `n` is the total parallelism. The pool joins its
/// workers on drop.
pub struct Pool {
    inner: std::sync::Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Serializes concurrent `run` calls (the fork/join protocol supports
    /// one epoch at a time; `run` takes `&self` so pools can be shared).
    run_lock: Mutex<()>,
}

impl Pool {
    /// Creates a pool with `threads` total threads of parallelism
    /// (clamped to at least 1). `Pool::new(1)` spawns nothing and runs
    /// every job inline on the caller.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let inner = std::sync::Arc::new(Inner {
            state: Mutex::new(Shared {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        let workers = (1..threads)
            .map(|i| {
                let inner = std::sync::Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("vt-par-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn vt-par worker")
            })
            .collect();
        Pool {
            inner,
            workers,
            run_lock: Mutex::new(()),
        }
    }

    /// Total parallelism of the pool (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `job(i)` for every `i in 0..items`, returning once all items
    /// have completed. Item-to-thread assignment is dynamic (an atomic
    /// counter), so `job` must be safe to call concurrently for distinct
    /// indices and must not rely on execution order. If any invocation
    /// panics, the first panic is re-raised here after all workers have
    /// stopped.
    pub fn run(&self, items: usize, job: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() || items <= 1 {
            for i in 0..items {
                job(i);
            }
            return;
        }
        // Tolerate poisoning: a prior `run` that re-raised a job panic
        // unwound with this guard held, which poisons the lock without
        // leaving any protected state inconsistent.
        let _guard = self
            .run_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // SAFETY: workers only dereference `job` between the epoch bump
        // below and their `active` decrement; we block until `active`
        // returns to zero before `job`'s real lifetime ends.
        let job_static: &'static JobFn = unsafe { std::mem::transmute(job) };
        self.inner.next.store(0, Ordering::Release);
        self.inner.total.store(items, Ordering::Release);
        {
            let mut st = self.inner.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(job_static);
            st.active = self.workers.len();
            self.inner.go.notify_all();
        }
        self.inner.drain(job_static);
        let mut st = self.inner.state.lock().unwrap();
        while st.active > 0 {
            st = self.inner.done.wait(st).unwrap();
        }
        st.job = None;
        drop(st);
        // Drop the guard before unwinding so the mutex is not poisoned.
        let payload = self
            .inner
            .panic
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs `job(i, &mut a[i], &mut b[i])` for every `i in 0..a.len()`,
    /// in parallel. This is the safe wrapper around [`DisjointMut`] for
    /// the common "tick two parallel arrays in lock-step" shape (the
    /// simulator's per-cycle SM phase): the pool hands each index to
    /// exactly one thread, so the per-index mutable borrows never alias
    /// and no caller-side `unsafe` is needed.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, and re-raises the first
    /// panic of any `job` invocation like [`Pool::run`].
    pub fn run_pairs<A, B>(
        &self,
        a: &mut [A],
        b: &mut [B],
        job: &(dyn Fn(usize, &mut A, &mut B) + Sync),
    ) where
        A: Send,
        B: Send,
    {
        assert_eq!(a.len(), b.len(), "run_pairs slices must zip exactly");
        let items = a.len();
        let a = DisjointMut::new(a);
        let b = DisjointMut::new(b);
        self.run(items, &|i| {
            // SAFETY: `Pool::run` claims each index on exactly one thread,
            // so these are the only live borrows of elements `i`.
            let ai = unsafe { a.index_mut(i) };
            let bi = unsafe { b.index_mut(i) };
            job(i, ai, bi);
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
            self.inner.go.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch bumped with a job installed");
                }
                st = inner.go.wait(st).unwrap();
            }
        };
        inner.drain(job);
        let mut st = inner.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            inner.done.notify_all();
        }
    }
}

/// Shared mutable access to disjoint slice elements across pool workers.
///
/// `Pool::run`'s dynamic index assignment guarantees each index is
/// claimed by exactly one thread, so handing each worker `&mut slice[i]`
/// for *its* `i` is race-free — but the borrow checker cannot see that
/// through a shared closure. This wrapper carries the raw parts and puts
/// the burden on the (unsafe) accessor.
pub struct DisjointMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: `DisjointMut` only hands out element references through the
// unsafe `index_mut`, whose contract forbids aliasing across threads;
// sending/sharing the wrapper itself is then safe for `Send` elements.
unsafe impl<T: Send> Sync for DisjointMut<'_, T> {}
unsafe impl<T: Send> Send for DisjointMut<'_, T> {}

impl<'a, T> DisjointMut<'a, T> {
    /// Wraps `slice` for disjoint-index access.
    pub fn new(slice: &'a mut [T]) -> DisjointMut<'a, T> {
        DisjointMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of wrapped elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `&mut slice[i]`.
    ///
    /// # Safety
    ///
    /// For the lifetime of the returned borrow no other thread may hold a
    /// reference (mutable or shared) to element `i`. Under `Pool::run`
    /// this holds when each invocation touches only its own index.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn index_mut(&self, i: usize) -> &mut T {
        assert!(
            i < self.len,
            "DisjointMut index {i} out of bounds {}",
            self.len
        );
        // SAFETY: `i < len` was asserted, so the pointer stays inside the
        // wrapped slice; exclusivity of the borrow is the caller's
        // contract (see the `# Safety` section above).
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Runs a vector of independent jobs on `pool` and collects their results
/// **by position**: `sweep(pool, vec![a, b, c])` always returns
/// `[a(), b(), c()]` regardless of which thread ran what, so the output
/// is deterministic whenever the jobs themselves are.
pub fn sweep<T, F>(pool: &Pool, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    pool.run(jobs.len(), &|i| {
        let f = jobs[i]
            .lock()
            .unwrap()
            .take()
            .expect("each job claimed once");
        *results[i].lock().unwrap() = Some(f());
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("pool ran every job"))
        .collect()
}

/// Installs `handler` as the process's SIGINT handler via the libc
/// `signal(2)` shim the C runtime already links. This is the workspace's
/// single home for that FFI call, so binaries that want graceful Ctrl-C
/// (checkpoint-then-exit) stay `unsafe`-free themselves; the handler must
/// restrict itself to async-signal-safe work (atomic stores).
pub fn install_sigint(handler: extern "C" fn(i32)) {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    // SAFETY: `signal` is the C standard library's own prototype, SIGINT
    // is a valid signal number, and the handler pointer has the exact
    // `extern "C" fn(i32)` ABI the registration expects.
    unsafe {
        signal(SIGINT, handler as usize);
    }
}

/// The default thread count: the `VT_THREADS` environment variable when
/// set to a positive integer, otherwise the host's available parallelism.
/// `VT_THREADS=1` forces the exact sequential code path everywhere.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var("VT_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        pool.run(8, &|_| {
            assert_eq!(std::thread::current().id(), tid);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = Pool::new(4);
        for items in [0usize, 1, 3, 7, 64, 1000] {
            let counts: Vec<AtomicU64> = (0..items).map(|_| AtomicU64::new(0)).collect();
            pool.run(items, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} of {items}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_epochs() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(10, &|i| {
                total.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 55);
    }

    #[test]
    fn disjoint_mut_writes_are_visible_after_run() {
        let pool = Pool::new(4);
        let mut data = vec![0u64; 256];
        let view = DisjointMut::new(&mut data);
        pool.run(view.len(), &|i| {
            // SAFETY: each index is claimed by exactly one thread.
            let slot = unsafe { view.index_mut(i) };
            *slot = (i as u64) * 3 + 1;
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 3 + 1);
        }
    }

    #[test]
    fn sweep_collects_results_in_job_order() {
        let pool = Pool::new(4);
        let jobs: Vec<_> = (0..100).map(|i| move || i * i).collect();
        let out = sweep(&pool, jobs);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn sweep_moves_non_copy_results() {
        let pool = Pool::new(2);
        let jobs: Vec<_> = (0..10).map(|i| move || vec![i; i + 1]).collect();
        let out = sweep(&pool, jobs);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i + 1);
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, &|i| {
                if i == 13 {
                    panic!("boom at 13");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom at 13"), "got {msg:?}");
        // The pool must survive a panicked epoch.
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn vt_threads_env_is_respected() {
        // `default_threads` reads the environment on every call; spot-check
        // the parse paths without mutating global env (other tests run in
        // parallel in this binary).
        let n = default_threads();
        assert!(n >= 1);
    }
}
