//! Assembler edge cases: directive handling, operand forms, failure
//! modes and their diagnostics.

use vt_isa::asm::{assemble, assemble_program, disassemble};
use vt_isa::error::IsaError;
use vt_isa::interp::Interpreter;
use vt_isa::op::{MemSpace, Operand, Sreg};
use vt_isa::Instr;

#[test]
fn full_kernel_with_all_directives() {
    let k = assemble(
        r"
        .kernel full
        .grid 3 96
        .regs 24
        .smem 1024
        .globalmem 2048
        mov r0, %tid
        st.s [r0+0], r0
        bar
        exit
        ",
    )
    .unwrap();
    assert_eq!(k.name(), "full");
    assert_eq!(k.num_ctas(), 3);
    assert_eq!(k.threads_per_cta(), 96);
    assert_eq!(k.regs_per_thread(), 24, ".regs floor wins over inferred 1");
    assert_eq!(k.smem_bytes_per_cta(), 1024);
    assert_eq!(k.global_mem().word_len(), 2048);
    // Unaligned shared store would trap: tid*1 is not a multiple of 4 for
    // tid=1... so scale: actually st.s [r0+0] with r0 = tid traps. Verify
    // the trap is reported rather than silently mis-executing.
    let err = Interpreter::new(&k).unwrap().run().unwrap_err();
    assert!(matches!(err, IsaError::Exec(_)));
}

#[test]
fn inferred_register_count_covers_highest_index() {
    let k = assemble(".grid 1 32\nmov r17, 5\nexit").unwrap();
    assert_eq!(k.regs_per_thread(), 18);
}

#[test]
fn whitespace_and_comments_are_tolerated() {
    let p = assemble_program("   ; leading comment\n\n  mov r0, 1   ; trailing\n\t exit ;done\n\n")
        .unwrap();
    assert_eq!(p.len(), 2);
}

#[test]
fn every_special_register_parses() {
    for (txt, sreg) in [
        ("%tid", Sreg::Tid),
        ("%ctaid", Sreg::CtaId),
        ("%ntid", Sreg::NTid),
        ("%ncta", Sreg::NCta),
        ("%lane", Sreg::Lane),
        ("%warpid", Sreg::WarpId),
    ] {
        let p = assemble_program(&format!("mov r0, {txt}")).unwrap();
        match *p.fetch(0) {
            Instr::Alu {
                a: Operand::Sreg(s),
                ..
            } => assert_eq!(s, sreg),
            ref o => panic!("unexpected {o}"),
        }
    }
}

#[test]
fn address_forms() {
    let p = assemble_program(
        "ld.g r0, [r1]\nld.g r0, [r1+0]\nld.g r0, [r1-4]\nld.s r0, [%tid+8]\nld.g r0, [256+12]",
    )
    .unwrap();
    let offsets: Vec<i32> = p
        .instrs()
        .iter()
        .map(|i| match *i {
            Instr::Ld { offset, .. } => offset,
            _ => panic!(),
        })
        .collect();
    assert_eq!(offsets, vec![0, 0, -4, 8, 12]);
    match *p.fetch(4) {
        Instr::Ld {
            addr: Operand::Imm(256),
            space: MemSpace::Global,
            ..
        } => {}
        ref o => panic!("unexpected {o}"),
    }
}

#[test]
fn error_diagnostics_are_specific() {
    let cases = [
        ("mov r0", "expects 2 operands"),
        ("bra top", "expected @target"),
        ("brc.nz r0, @a", "expects 3 operands"),
        ("ld.g r0, r1", "expected [addr]"),
        ("st.g [r0+z], r1", "bad offset"),
        ("mov rx, 1", "expected register"),
        ("mov r0, %bogus", "unknown special register"),
        ("atom.bogus.g [r0+0], r1", "unknown atomic"),
        ("frobnicate r1, r2", "unknown mnemonic"),
        ("mov r0, 0xzz", "bad operand"),
    ];
    for (src, needle) in cases {
        let e = assemble_program(src).unwrap_err();
        assert!(
            e.message.contains(needle),
            "`{src}` → `{}` (wanted `{needle}`)",
            e.message
        );
        assert_eq!(e.line, 1);
    }
}

#[test]
fn directive_errors() {
    for (src, needle) in [
        (".grid 4", ".grid needs threads per CTA"),
        (".regs", ".regs needs a count"),
        (".kernel", ".kernel needs a name"),
        (".smem xyz", "bad number"),
    ] {
        match assemble(src).unwrap_err() {
            IsaError::Asm(e) => assert!(e.message.contains(needle), "`{src}` → `{}`", e.message),
            other => panic!("unexpected error {other}"),
        }
    }
}

#[test]
fn labels_at_program_end_resolve() {
    // A loop whose exit label is the trailing `exit`.
    let p = assemble_program(
        r"
        mov r0, 3
        @top:
        sub r0, r0, 1
        brc.nz r0, @again, @done
        @again:
        bra @top
        @done:
        exit
        ",
    )
    .unwrap();
    assert_eq!(p.len(), 5);
    match *p.fetch(2) {
        Instr::BraCond {
            target: 3,
            reconv: 4,
            ..
        } => {}
        ref o => panic!("unexpected {o}"),
    }
}

#[test]
fn validation_failure_surfaces_through_assemble() {
    // Backward divergent branch: parses, fails validation in Kernel::new.
    let err = assemble(
        r"
        .grid 1 32
        @top:
        mov r0, 1
        brc.nz r0, @top, @top
        exit
        ",
    )
    .unwrap_err();
    assert!(matches!(err, IsaError::Program(_)), "got {err}");
}

#[test]
fn display_of_every_instruction_form_reassembles() {
    let src = r"
        mov r0, %ncta
        u2f r1, r0
        f2u r2, r1
        mulhi r3, r0, r2
        set.ges r4, r3, r0
        fset.le r5, r1, r1
        fmin r6, r1, r1
        mad r7, r0, r0, r0
        ffma r8, r1, r1, r1
        rsqrt r9, r1
        log2 r10, r1
        sin r11, r1
        atom.min.g [r0+0], r1
        atom.exch.g r12, [r0+4], r2
        st.s [r0-8], r3
        bar
        exit
    ";
    let p1 = assemble_program(src).unwrap();
    let p2 = assemble_program(&disassemble(&p1)).unwrap();
    assert_eq!(p1, p2);
}
