//! Property tests for the ISA layer: the SIMT stack conserves lanes for
//! arbitrary structured programs, the assembler round-trips arbitrary
//! instruction sequences, and ALU semantics obey algebraic laws.

use proptest::prelude::*;
use vt_isa::asm::{assemble_program, disassemble};
use vt_isa::exec::eval_alu;
use vt_isa::interp::Interpreter;
use vt_isa::op::{AluOp, AtomOp, BranchIf, MemSpace, Operand, Reg, SfuOp, Sreg};
use vt_isa::{Instr, KernelBuilder, Program};

// ---------- lane conservation through arbitrary structured control flow ----

/// A recipe for a random structured program.
#[derive(Debug, Clone)]
enum Ctl {
    Work(u8),
    If(Vec<Ctl>),
    IfElse(Vec<Ctl>, Vec<Ctl>),
    Loop(u8, Vec<Ctl>),
}

fn ctl_strategy(depth: u32) -> impl Strategy<Value = Ctl> {
    let leaf = (0u8..4).prop_map(Ctl::Work);
    leaf.prop_recursive(depth, 12, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Ctl::If),
            (proptest::collection::vec(inner.clone(), 0..3),
             proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(a, b)| Ctl::IfElse(a, b)),
            (1u8..4, proptest::collection::vec(inner, 0..3))
                .prop_map(|(n, body)| Ctl::Loop(n, body)),
        ]
    })
}

fn emit(b: &mut KernelBuilder, node: &Ctl, acc: Reg, p: Reg, salt: &mut u32) {
    *salt = salt.wrapping_mul(1664525).wrapping_add(1013904223);
    match node {
        Ctl::Work(n) => {
            for _ in 0..*n {
                b.add(acc, Operand::Reg(acc), Operand::Imm(*salt & 0xff));
            }
        }
        Ctl::If(body) => {
            b.and_(p, Operand::Sreg(Sreg::Tid), Operand::Imm(1 + (*salt & 7)));
            let body = body.clone();
            let mut s = *salt;
            b.if_(Operand::Reg(p), |b| {
                for n in &body {
                    emit(b, n, acc, p, &mut s);
                }
            });
        }
        Ctl::IfElse(t, e) => {
            b.and_(p, Operand::Sreg(Sreg::Tid), Operand::Imm(1 + (*salt & 7)));
            let (t, e) = (t.clone(), e.clone());
            let mut s = *salt;
            let mut s2 = salt.wrapping_add(99);
            b.if_else(
                Operand::Reg(p),
                |b| {
                    for n in &t {
                        emit(b, n, acc, p, &mut s);
                    }
                },
                |b| {
                    for n in &e {
                        emit(b, n, acc, p, &mut s2);
                    }
                },
            );
        }
        Ctl::Loop(trips, body) => {
            let ctr = b.reg();
            // Trip count varies per thread (tid-dependent) to force
            // loop-exit divergence.
            let lim = b.reg();
            b.and_(lim, Operand::Sreg(Sreg::Tid), Operand::Imm(u32::from(*trips)));
            let body = body.clone();
            let mut s = *salt;
            b.for_range(ctr, Operand::Imm(0), Operand::Reg(lim), 1, |b, _| {
                for n in &body {
                    emit(b, n, acc, p, &mut s);
                }
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every thread must complete and write its result exactly once, no
    /// matter how control flow nests: the SIMT stack never strands or
    /// duplicates lanes.
    #[test]
    fn structured_programs_conserve_lanes(
        nodes in proptest::collection::vec(ctl_strategy(3), 1..5),
        threads in prop_oneof![Just(32u32), Just(40), Just(64)],
    ) {
        let mut b = KernelBuilder::new("lanes");
        let out = b.alloc_global(threads as usize);
        let acc = b.reg();
        let p = b.reg();
        let off = b.reg();
        b.mov(acc, Operand::Imm(1));
        let mut salt = 0x9e3779b9u32;
        for n in &nodes {
            emit(&mut b, n, acc, p, &mut salt);
        }
        // acc >= 1 always; out[tid] = acc marks the lane as completed.
        b.max_(acc, Operand::Reg(acc), Operand::Imm(1));
        b.shl(off, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(acc));
        let kernel = b.build(1, threads).unwrap();
        let r = Interpreter::new(&kernel).unwrap().run().unwrap();
        for t in 0..threads {
            prop_assert!(
                r.load_words(out + 4 * t, 1)[0] >= 1,
                "thread {t} never reached the epilogue"
            );
        }
        prop_assert!(r.max_simt_depth() <= 2 * 3 * 5 + 1, "stack stays bounded");
    }
}

// ---------- assembler round trip ------------------------------------------

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u16..32).prop_map(|r| Operand::Reg(Reg(r))),
        any::<u32>().prop_map(Operand::Imm),
        prop_oneof![
            Just(Sreg::Tid),
            Just(Sreg::CtaId),
            Just(Sreg::NTid),
            Just(Sreg::NCta),
            Just(Sreg::Lane),
            Just(Sreg::WarpId)
        ]
        .prop_map(Operand::Sreg),
    ]
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let alu = proptest::sample::select(AluOp::ALL.to_vec());
    let sfu = proptest::sample::select(SfuOp::ALL.to_vec());
    let space = prop_oneof![Just(MemSpace::Global), Just(MemSpace::Shared)];
    let atom = prop_oneof![
        Just(AtomOp::Add),
        Just(AtomOp::Max),
        Just(AtomOp::Min),
        Just(AtomOp::Exch)
    ];
    prop_oneof![
        (alu, 0u16..32, operand_strategy(), operand_strategy()).prop_map(|(op, d, a, b)| {
            // Unary forms print without the second operand; normalise it.
            let b = match op {
                AluOp::Mov | AluOp::U2F | AluOp::F2U => Operand::Imm(0),
                _ => b,
            };
            Instr::Alu { op, dst: Reg(d), a, b }
        }),
        (0u16..32, operand_strategy(), operand_strategy(), operand_strategy())
            .prop_map(|(d, a, b, c)| Instr::Mad { dst: Reg(d), a, b, c }),
        (0u16..32, operand_strategy(), operand_strategy(), operand_strategy())
            .prop_map(|(d, a, b, c)| Instr::Ffma { dst: Reg(d), a, b, c }),
        (sfu, 0u16..32, operand_strategy()).prop_map(|(op, d, a)| Instr::Sfu {
            op,
            dst: Reg(d),
            a
        }),
        (space.clone(), 0u16..32, operand_strategy(), -64i32..64).prop_map(
            |(space, d, addr, offset)| Instr::Ld { space, dst: Reg(d), addr, offset }
        ),
        (space, operand_strategy(), -64i32..64, operand_strategy())
            .prop_map(|(space, addr, offset, src)| Instr::St { space, addr, offset, src }),
        (atom, proptest::option::of(0u16..32), operand_strategy(), -64i32..64, operand_strategy())
            .prop_map(|(op, d, addr, offset, val)| Instr::Atom {
                op,
                dst: d.map(Reg),
                addr,
                offset,
                val
            }),
        Just(Instr::Bar),
        (0usize..100).prop_map(|t| Instr::Bra { target: t }),
        (prop_oneof![Just(BranchIf::NonZero), Just(BranchIf::Zero)], operand_strategy())
            .prop_map(|(when, pred)| Instr::BraCond { pred, when, target: 50, reconv: 60 }),
        Just(Instr::Exit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn disassembly_reassembles_identically(
        instrs in proptest::collection::vec(instr_strategy(), 1..30),
    ) {
        let program = Program::new(instrs);
        let text = disassemble(&program);
        let back = assemble_program(&text).unwrap_or_else(|e| {
            panic!("reassembly failed: {e}\n{text}")
        });
        prop_assert_eq!(program, back);
    }
}

// ---------- ALU algebra -----------------------------------------------------

proptest! {
    #[test]
    fn commutative_ops(a in any::<u32>(), b in any::<u32>()) {
        for op in [AluOp::Add, AluOp::Mul, AluOp::Min, AluOp::Max, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::MulHi] {
            prop_assert_eq!(eval_alu(op, a, b), eval_alu(op, b, a), "{:?}", op);
        }
    }

    #[test]
    fn identities(a in any::<u32>()) {
        prop_assert_eq!(eval_alu(AluOp::Add, a, 0), a);
        prop_assert_eq!(eval_alu(AluOp::Mul, a, 1), a);
        prop_assert_eq!(eval_alu(AluOp::Or, a, 0), a);
        prop_assert_eq!(eval_alu(AluOp::And, a, u32::MAX), a);
        prop_assert_eq!(eval_alu(AluOp::Xor, a, a), 0);
        prop_assert_eq!(eval_alu(AluOp::Sub, a, a), 0);
        prop_assert_eq!(eval_alu(AluOp::Mov, a, 12345), a);
    }

    #[test]
    fn comparisons_are_consistent(a in any::<u32>(), b in any::<u32>()) {
        let lt = eval_alu(AluOp::SetLt, a, b);
        let ge = eval_alu(AluOp::SetGe, a, b);
        prop_assert_eq!(lt ^ ge, 1, "lt and ge partition");
        let eq = eval_alu(AluOp::SetEq, a, b);
        let ne = eval_alu(AluOp::SetNe, a, b);
        prop_assert_eq!(eq ^ ne, 1);
        prop_assert_eq!(eval_alu(AluOp::SetGt, a, b), eval_alu(AluOp::SetLt, b, a));
    }

    #[test]
    fn div_rem_reconstruct(a in any::<u32>(), b in 1u32..) {
        let q = eval_alu(AluOp::Div, a, b);
        let r = eval_alu(AluOp::Rem, a, b);
        prop_assert_eq!(q * b + r, a);
        prop_assert!(r < b);
    }
}
