//! Randomized property tests for the ISA layer: the SIMT stack conserves
//! lanes for arbitrary structured programs, the assembler round-trips
//! arbitrary instruction sequences, and ALU semantics obey algebraic
//! laws. Driven by the workspace's deterministic [`vt_prng::Prng`] so the
//! cases are reproducible and the build stays offline.

use vt_isa::asm::{assemble_program, disassemble};
use vt_isa::exec::eval_alu;
use vt_isa::interp::Interpreter;
use vt_isa::op::{AluOp, AtomOp, BranchIf, MemSpace, Operand, Reg, SfuOp, Sreg};
use vt_isa::{Instr, KernelBuilder, Program};
use vt_prng::Prng;

// ---------- lane conservation through arbitrary structured control flow ----

/// A recipe for a random structured program.
#[derive(Debug, Clone)]
enum Ctl {
    Work(u8),
    If(Vec<Ctl>),
    IfElse(Vec<Ctl>, Vec<Ctl>),
    Loop(u8, Vec<Ctl>),
}

fn gen_ctl(r: &mut Prng, depth: u32) -> Ctl {
    let leaf = depth == 0 || r.gen_bool(0.4);
    if leaf {
        return Ctl::Work(r.gen_range(0..4) as u8);
    }
    let children = |r: &mut Prng| -> Vec<Ctl> {
        (0..r.gen_range(0..3))
            .map(|_| gen_ctl(r, depth - 1))
            .collect()
    };
    match r.gen_range(0..3) {
        0 => Ctl::If(children(r)),
        1 => {
            let t = children(r);
            let e = children(r);
            Ctl::IfElse(t, e)
        }
        _ => Ctl::Loop(r.gen_range(1..4) as u8, children(r)),
    }
}

fn emit(b: &mut KernelBuilder, node: &Ctl, acc: Reg, p: Reg, salt: &mut u32) {
    *salt = salt.wrapping_mul(1664525).wrapping_add(1013904223);
    match node {
        Ctl::Work(n) => {
            for _ in 0..*n {
                b.add(acc, Operand::Reg(acc), Operand::Imm(*salt & 0xff));
            }
        }
        Ctl::If(body) => {
            b.and_(p, Operand::Sreg(Sreg::Tid), Operand::Imm(1 + (*salt & 7)));
            let mut s = *salt;
            b.if_(Operand::Reg(p), |b| {
                for n in body {
                    emit(b, n, acc, p, &mut s);
                }
            });
        }
        Ctl::IfElse(t, e) => {
            b.and_(p, Operand::Sreg(Sreg::Tid), Operand::Imm(1 + (*salt & 7)));
            let mut s = *salt;
            let mut s2 = salt.wrapping_add(99);
            b.if_else(
                Operand::Reg(p),
                |b| {
                    for n in t {
                        emit(b, n, acc, p, &mut s);
                    }
                },
                |b| {
                    for n in e {
                        emit(b, n, acc, p, &mut s2);
                    }
                },
            );
        }
        Ctl::Loop(trips, body) => {
            let ctr = b.reg();
            // Trip count varies per thread (tid-dependent) to force
            // loop-exit divergence.
            let lim = b.reg();
            b.and_(
                lim,
                Operand::Sreg(Sreg::Tid),
                Operand::Imm(u32::from(*trips)),
            );
            let mut s = *salt;
            b.for_range(ctr, Operand::Imm(0), Operand::Reg(lim), 1, |b, _| {
                for n in body {
                    emit(b, n, acc, p, &mut s);
                }
            });
        }
    }
}

/// Every thread must complete and write its result exactly once, no
/// matter how control flow nests: the SIMT stack never strands or
/// duplicates lanes.
#[test]
fn structured_programs_conserve_lanes() {
    let mut r = Prng::new(0x1a4e5);
    for case in 0..48 {
        let nodes: Vec<Ctl> = (0..r.gen_range(1..5)).map(|_| gen_ctl(&mut r, 3)).collect();
        let threads = *r.choose(&[32u32, 40, 64]);
        let mut b = KernelBuilder::new("lanes");
        let out = b.alloc_global(threads as usize);
        let acc = b.reg();
        let p = b.reg();
        let off = b.reg();
        b.mov(acc, Operand::Imm(1));
        let mut salt = 0x9e3779b9u32;
        for n in &nodes {
            emit(&mut b, n, acc, p, &mut salt);
        }
        // acc >= 1 always; out[tid] = acc marks the lane as completed.
        b.max_(acc, Operand::Reg(acc), Operand::Imm(1));
        b.shl(off, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(acc));
        let kernel = b.build(1, threads).unwrap();
        let rep = Interpreter::new(&kernel).unwrap().run().unwrap();
        for t in 0..threads {
            assert!(
                rep.load_words(out + 4 * t, 1)[0] >= 1,
                "case {case}: thread {t} never reached the epilogue\n{nodes:?}"
            );
        }
        assert!(
            rep.max_simt_depth() <= 2 * 3 * 5 + 1,
            "case {case}: stack stays bounded"
        );
    }
}

// ---------- assembler round trip ------------------------------------------

fn gen_operand(r: &mut Prng) -> Operand {
    match r.gen_range(0..3) {
        0 => Operand::Reg(Reg(r.gen_range(0..32) as u16)),
        1 => Operand::Imm(r.next_u32()),
        _ => Operand::Sreg(*r.choose(&[
            Sreg::Tid,
            Sreg::CtaId,
            Sreg::NTid,
            Sreg::NCta,
            Sreg::Lane,
            Sreg::WarpId,
        ])),
    }
}

fn gen_reg(r: &mut Prng) -> Reg {
    Reg(r.gen_range(0..32) as u16)
}

fn gen_offset(r: &mut Prng) -> i32 {
    r.gen_range(0..128) as i32 - 64
}

fn gen_instr(r: &mut Prng) -> Instr {
    let space = |r: &mut Prng| *r.choose(&[MemSpace::Global, MemSpace::Shared]);
    match r.gen_range(0..11) {
        0 => {
            let op = *r.choose(AluOp::ALL);
            let b = match op {
                // Unary forms print without the second operand; normalise it.
                AluOp::Mov | AluOp::U2F | AluOp::F2U => Operand::Imm(0),
                _ => gen_operand(r),
            };
            Instr::Alu {
                op,
                dst: gen_reg(r),
                a: gen_operand(r),
                b,
            }
        }
        1 => Instr::Mad {
            dst: gen_reg(r),
            a: gen_operand(r),
            b: gen_operand(r),
            c: gen_operand(r),
        },
        2 => Instr::Ffma {
            dst: gen_reg(r),
            a: gen_operand(r),
            b: gen_operand(r),
            c: gen_operand(r),
        },
        3 => Instr::Sfu {
            op: *r.choose(SfuOp::ALL),
            dst: gen_reg(r),
            a: gen_operand(r),
        },
        4 => Instr::Ld {
            space: space(r),
            dst: gen_reg(r),
            addr: gen_operand(r),
            offset: gen_offset(r),
        },
        5 => Instr::St {
            space: space(r),
            addr: gen_operand(r),
            offset: gen_offset(r),
            src: gen_operand(r),
        },
        6 => Instr::Atom {
            op: *r.choose(&[AtomOp::Add, AtomOp::Max, AtomOp::Min, AtomOp::Exch]),
            dst: if r.gen_bool(0.5) {
                Some(gen_reg(r))
            } else {
                None
            },
            addr: gen_operand(r),
            offset: gen_offset(r),
            val: gen_operand(r),
        },
        7 => Instr::Bar,
        8 => Instr::Bra {
            target: r.gen_range_usize(0..100),
        },
        9 => Instr::BraCond {
            pred: gen_operand(r),
            when: *r.choose(&[BranchIf::NonZero, BranchIf::Zero]),
            target: 50,
            reconv: 60,
        },
        _ => Instr::Exit,
    }
}

#[test]
fn disassembly_reassembles_identically() {
    let mut r = Prng::new(0x5eed);
    for _ in 0..64 {
        let n = r.gen_range_usize(1..30);
        let instrs: Vec<Instr> = (0..n).map(|_| gen_instr(&mut r)).collect();
        let program = Program::new(instrs);
        let text = disassemble(&program);
        let back =
            assemble_program(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        assert_eq!(program, back, "{text}");
    }
}

// ---------- ALU algebra -----------------------------------------------------

#[test]
fn commutative_ops() {
    let mut r = Prng::new(1);
    for _ in 0..256 {
        let (a, b) = (r.next_u32(), r.next_u32());
        for op in [
            AluOp::Add,
            AluOp::Mul,
            AluOp::Min,
            AluOp::Max,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::MulHi,
        ] {
            assert_eq!(eval_alu(op, a, b), eval_alu(op, b, a), "{op:?}");
        }
    }
}

#[test]
fn identities() {
    let mut r = Prng::new(2);
    for _ in 0..256 {
        let a = r.next_u32();
        assert_eq!(eval_alu(AluOp::Add, a, 0), a);
        assert_eq!(eval_alu(AluOp::Mul, a, 1), a);
        assert_eq!(eval_alu(AluOp::Or, a, 0), a);
        assert_eq!(eval_alu(AluOp::And, a, u32::MAX), a);
        assert_eq!(eval_alu(AluOp::Xor, a, a), 0);
        assert_eq!(eval_alu(AluOp::Sub, a, a), 0);
        assert_eq!(eval_alu(AluOp::Mov, a, 12345), a);
    }
}

#[test]
fn comparisons_are_consistent() {
    let mut r = Prng::new(3);
    for i in 0..256 {
        // Mix fully random pairs with equal pairs so SetEq/SetNe see both.
        let a = r.next_u32();
        let b = if i % 4 == 0 { a } else { r.next_u32() };
        let lt = eval_alu(AluOp::SetLt, a, b);
        let ge = eval_alu(AluOp::SetGe, a, b);
        assert_eq!(lt ^ ge, 1, "lt and ge partition");
        let eq = eval_alu(AluOp::SetEq, a, b);
        let ne = eval_alu(AluOp::SetNe, a, b);
        assert_eq!(eq ^ ne, 1);
        assert_eq!(eval_alu(AluOp::SetGt, a, b), eval_alu(AluOp::SetLt, b, a));
    }
}

#[test]
fn div_rem_reconstruct() {
    let mut r = Prng::new(4);
    for _ in 0..256 {
        let a = r.next_u32();
        let b = r.next_u32().max(1);
        let q = eval_alu(AluOp::Div, a, b);
        let rem = eval_alu(AluOp::Rem, a, b);
        assert_eq!(q.wrapping_mul(b).wrapping_add(rem), a);
        assert!(rem < b);
    }
}
