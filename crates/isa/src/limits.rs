//! Per-SM resource limits — the single source of truth for the
//! scheduling and capacity constants everything else reasons about.
//!
//! The paper's whole argument lives in the gap between two limit
//! families: the **scheduling limit** (CTA slots and warp slots — PCs,
//! SIMT stacks, scoreboard entries) and the **capacity limit** (register
//! file and shared memory). [`SmLimits`] names those four numbers once;
//! the simulator's `CoreConfig` is built from it, the static analyzer's
//! occupancy model consumes it, and tests compare both against the same
//! bounds so the constants can never drift apart.
//!
//! [`SmLimits::bounds`] turns the limits plus one kernel's footprint into
//! the exact per-resource resident-CTA bounds ([`CtaBounds`]), and
//! [`CtaBounds::limiter`] classifies which resource binds first — the
//! paper's Figure 1/2 motivation study as a pure function.

use crate::kernel::Kernel;
use crate::WARP_SIZE;

/// The per-SM scheduling and capacity limits of one machine generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmLimits {
    /// Warp slots per SM (PCs / SIMT stacks / scoreboards) — scheduling.
    pub max_warps_per_sm: u32,
    /// CTA slots per SM (barrier/bookkeeping entries) — scheduling.
    pub max_ctas_per_sm: u32,
    /// Register-file bytes per SM — capacity.
    pub regfile_bytes: u32,
    /// Shared-memory bytes per SM — capacity.
    pub smem_bytes: u32,
}

impl SmLimits {
    /// The GTX 480 (Fermi)-class machine the paper simulates: 48 warp
    /// slots, 8 CTA slots, 128 KiB registers, 48 KiB shared memory.
    pub const fn fermi() -> SmLimits {
        SmLimits {
            max_warps_per_sm: 48,
            max_ctas_per_sm: 8,
            regfile_bytes: 128 * 1024,
            smem_bytes: 48 * 1024,
        }
    }

    /// A Kepler-class design point (64 warp slots, 16 CTA slots, 256 KiB
    /// registers) used by the arch head-to-head sweeps.
    pub const fn kepler() -> SmLimits {
        SmLimits {
            max_warps_per_sm: 64,
            max_ctas_per_sm: 16,
            regfile_bytes: 256 * 1024,
            smem_bytes: 48 * 1024,
        }
    }

    /// Thread slots per SM implied by the warp slots.
    pub const fn max_threads_per_sm(&self) -> u32 {
        self.max_warps_per_sm * WARP_SIZE
    }

    /// 32-bit registers per SM.
    pub const fn regfile_regs(&self) -> u32 {
        self.regfile_bytes / 4
    }

    /// Exact resident-CTA bound per resource for one kernel's footprint.
    pub fn bounds(&self, kernel: &Kernel) -> CtaBounds {
        let wpc = kernel.warps_per_cta().max(1);
        let reg_bytes = kernel.reg_bytes_per_cta().max(1);
        CtaBounds {
            by_cta_slots: self.max_ctas_per_sm,
            by_warp_slots: self.max_warps_per_sm / wpc,
            by_registers: self.regfile_bytes / reg_bytes,
            by_shared_memory: if kernel.smem_bytes_per_cta() == 0 {
                u32::MAX
            } else {
                self.smem_bytes / kernel.smem_bytes_per_cta()
            },
        }
    }
}

impl Default for SmLimits {
    fn default() -> Self {
        SmLimits::fermi()
    }
}

/// The resource that limits concurrent CTAs per SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Limiter {
    /// CTA slots (scheduling limit).
    CtaSlots,
    /// Warp slots / PCs / SIMT stacks (scheduling limit).
    WarpSlots,
    /// Register file (capacity limit).
    Registers,
    /// Shared memory (capacity limit).
    SharedMemory,
    /// Scheduling and capacity limits coincide.
    Balanced,
}

impl Limiter {
    /// Whether this limiter is a scheduling-structure shortage — the class
    /// of applications Virtual Thread accelerates.
    pub fn is_scheduling(&self) -> bool {
        matches!(self, Limiter::CtaSlots | Limiter::WarpSlots)
    }
}

impl std::fmt::Display for Limiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Limiter::CtaSlots => "cta-slots",
            Limiter::WarpSlots => "warp-slots",
            Limiter::Registers => "registers",
            Limiter::SharedMemory => "shared-memory",
            Limiter::Balanced => "balanced",
        };
        f.write_str(s)
    }
}

/// Per-resource resident-CTA bounds of one kernel on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtaBounds {
    /// CTAs allowed by the CTA-slot limit.
    pub by_cta_slots: u32,
    /// CTAs allowed by the warp-slot limit.
    pub by_warp_slots: u32,
    /// CTAs allowed by the register file.
    pub by_registers: u32,
    /// CTAs allowed by shared memory (`u32::MAX` when the kernel uses
    /// none).
    pub by_shared_memory: u32,
}

impl CtaBounds {
    /// The scheduling-limit bound: min of CTA and warp slots.
    pub fn scheduling(&self) -> u32 {
        self.by_cta_slots.min(self.by_warp_slots)
    }

    /// The capacity-limit bound: min of registers and shared memory.
    /// Always finite — `by_registers` is.
    pub fn capacity(&self) -> u32 {
        self.by_registers.min(self.by_shared_memory)
    }

    /// Resident CTAs under conventional hardware: min of all four.
    pub fn baseline(&self) -> u32 {
        self.scheduling().min(self.capacity())
    }

    /// The binding resource class. Ties inside a family resolve to the
    /// scarcer resource; a tie across families is [`Limiter::Balanced`].
    pub fn limiter(&self) -> Limiter {
        match self.scheduling().cmp(&self.capacity()) {
            std::cmp::Ordering::Less => {
                if self.by_cta_slots <= self.by_warp_slots {
                    Limiter::CtaSlots
                } else {
                    Limiter::WarpSlots
                }
            }
            std::cmp::Ordering::Greater => {
                if self.by_registers <= self.by_shared_memory {
                    Limiter::Registers
                } else {
                    Limiter::SharedMemory
                }
            }
            std::cmp::Ordering::Equal => Limiter::Balanced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    fn kernel(threads: u32, regs: u16, smem: u32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        b.pad_regs(regs);
        b.pad_smem(smem);
        b.exit();
        b.build(1, threads).unwrap()
    }

    #[test]
    fn fermi_constants_match_the_paper() {
        let l = SmLimits::fermi();
        assert_eq!(l.max_threads_per_sm(), 1536);
        assert_eq!(l.regfile_regs(), 32768);
        assert_eq!(SmLimits::default(), l);
    }

    #[test]
    fn bounds_cover_all_four_resources() {
        let l = SmLimits::fermi();
        let b = l.bounds(&kernel(64, 16, 0));
        assert_eq!(b.by_cta_slots, 8);
        assert_eq!(b.by_warp_slots, 24);
        assert_eq!(b.by_registers, 128 * 1024 / (2 * 32 * 16 * 4));
        assert_eq!(b.by_shared_memory, u32::MAX);
        assert_eq!(b.scheduling(), 8);
        assert_eq!(b.baseline(), 8);
        assert_eq!(b.limiter(), Limiter::CtaSlots);
        assert!(b.limiter().is_scheduling());
    }

    #[test]
    fn capacity_limits_classify_by_scarcer_resource() {
        let l = SmLimits::fermi();
        let regs = l.bounds(&kernel(256, 42, 0));
        assert_eq!(regs.limiter(), Limiter::Registers);
        assert!(!regs.limiter().is_scheduling());
        let smem = l.bounds(&kernel(128, 16, 16 * 1024));
        assert_eq!(smem.by_shared_memory, 3);
        assert_eq!(smem.limiter(), Limiter::SharedMemory);
    }

    #[test]
    fn balanced_when_families_tie() {
        let b = SmLimits::fermi().bounds(&kernel(128, 32, 0));
        assert_eq!(b.by_registers, 8);
        assert_eq!(b.limiter(), Limiter::Balanced);
    }

    #[test]
    fn kepler_relaxes_the_scheduling_limit() {
        let k = kernel(64, 16, 0);
        let fermi = SmLimits::fermi().bounds(&k);
        let kepler = SmLimits::kepler().bounds(&k);
        assert!(kepler.scheduling() > fermi.scheduling());
        assert!(kepler.by_registers > fermi.by_registers);
    }
}
