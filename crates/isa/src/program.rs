//! A validated sequence of instructions.

use crate::error::ProgramError;
use crate::instr::Instr;
use crate::op::Operand;
use std::fmt;

/// An immutable, index-addressed instruction sequence.
///
/// Program counters are plain indices into the instruction vector. A
/// `Program` is usually produced by [`crate::builder::KernelBuilder`] or
/// [`crate::asm::assemble`] and validated against a kernel's resource
/// declaration by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Wraps a raw instruction vector. Prefer the builder or assembler,
    /// which guarantee structured control flow by construction.
    pub fn new(instrs: Vec<Instr>) -> Program {
        Program { instrs }
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range; validated programs never reach an
    /// out-of-range PC.
    pub fn fetch(&self, pc: usize) -> &Instr {
        &self.instrs[pc]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Iterates over `(pc, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Instr)> {
        self.instrs.iter().enumerate()
    }

    /// The raw instruction slice.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Statically checks the program against a per-thread register count
    /// and per-CTA shared memory size.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found: empty program, register
    /// index or branch target out of range, an unstructured divergent
    /// branch (`reconv < target` or a non-forward edge), a missing trailing
    /// control transfer, or a statically-out-of-range shared access (only
    /// detectable for immediate addresses).
    pub fn validate(&self, regs_per_thread: u16, smem_bytes: u32) -> Result<(), ProgramError> {
        if self.instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        let len = self.instrs.len();
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Some(dst) = instr.dst() {
                if dst.0 >= regs_per_thread {
                    return Err(ProgramError::RegisterOutOfRange {
                        pc,
                        reg: dst.0,
                        limit: regs_per_thread,
                    });
                }
            }
            for src in instr.src_regs() {
                if src.0 >= regs_per_thread {
                    return Err(ProgramError::RegisterOutOfRange {
                        pc,
                        reg: src.0,
                        limit: regs_per_thread,
                    });
                }
            }
            match *instr {
                Instr::Bra { target } if target >= len => {
                    return Err(ProgramError::TargetOutOfRange { pc, target });
                }
                Instr::BraCond { target, reconv, .. } => {
                    if target >= len {
                        return Err(ProgramError::TargetOutOfRange { pc, target });
                    }
                    if reconv > len {
                        return Err(ProgramError::TargetOutOfRange { pc, target: reconv });
                    }
                    // Structured divergence: the taken edge and the
                    // reconvergence point are both forward, and lanes on
                    // the taken path never run past the reconvergence
                    // point from behind it.
                    if target <= pc || reconv < target {
                        return Err(ProgramError::UnstructuredBranch { pc });
                    }
                }
                Instr::Ld {
                    space: crate::op::MemSpace::Shared,
                    addr,
                    offset,
                    ..
                }
                | Instr::St {
                    space: crate::op::MemSpace::Shared,
                    addr,
                    offset,
                    ..
                } => {
                    if let Operand::Imm(base) = addr {
                        // Exact arithmetic: a huge immediate base plus a
                        // positive offset can wrap the u32 address space
                        // back into range under `wrapping_add`, and a
                        // negative offset can underflow past zero; both
                        // must be rejected, so evaluate in i64.
                        let a = i64::from(base) + i64::from(offset);
                        if a < 0 || a + 4 > i64::from(smem_bytes) {
                            return Err(ProgramError::SharedOutOfRange { pc });
                        }
                    }
                }
                _ => {}
            }
        }
        // Control must not be able to run off the end.
        match self.instrs[len - 1] {
            Instr::Exit | Instr::Bra { .. } => Ok(()),
            _ => Err(ProgramError::MissingExit),
        }
    }

    /// Static instruction counts by category, used for workload
    /// characterization tables.
    pub fn mix(&self) -> InstrMix {
        let mut mix = InstrMix::default();
        for i in &self.instrs {
            match i {
                Instr::Alu { .. } | Instr::Mad { .. } | Instr::Ffma { .. } => mix.alu += 1,
                Instr::Sfu { .. } => mix.sfu += 1,
                Instr::Ld {
                    space: crate::op::MemSpace::Global,
                    ..
                }
                | Instr::St {
                    space: crate::op::MemSpace::Global,
                    ..
                }
                | Instr::Atom { .. } => mix.global_mem += 1,
                Instr::Ld { .. } | Instr::St { .. } => mix.shared_mem += 1,
                Instr::Bar => mix.barrier += 1,
                Instr::Bra { .. } | Instr::BraCond { .. } | Instr::Exit => mix.control += 1,
            }
        }
        mix
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, i) in self.iter() {
            writeln!(f, "{pc:4}: {i}")?;
        }
        Ok(())
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

/// Static instruction mix of a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// SP-pipeline arithmetic instructions.
    pub alu: usize,
    /// SFU-pipeline instructions.
    pub sfu: usize,
    /// Global loads, stores and atomics.
    pub global_mem: usize,
    /// Shared-memory loads and stores.
    pub shared_mem: usize,
    /// Barriers.
    pub barrier: usize,
    /// Branches and exits.
    pub control: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, BranchIf, MemSpace, Reg};

    fn add(dst: u16, a: u16) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            a: Operand::Reg(Reg(a)),
            b: Operand::Imm(1),
        }
    }

    #[test]
    fn validate_accepts_simple_program() {
        let p = Program::new(vec![add(0, 1), Instr::Exit]);
        assert!(p.validate(2, 0).is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(
            Program::new(vec![]).validate(8, 0),
            Err(ProgramError::Empty)
        );
    }

    #[test]
    fn validate_rejects_register_overflow() {
        let p = Program::new(vec![add(5, 0), Instr::Exit]);
        assert_eq!(
            p.validate(4, 0),
            Err(ProgramError::RegisterOutOfRange {
                pc: 0,
                reg: 5,
                limit: 4
            })
        );
    }

    #[test]
    fn validate_rejects_missing_exit() {
        let p = Program::new(vec![add(0, 0)]);
        assert_eq!(p.validate(1, 0), Err(ProgramError::MissingExit));
    }

    #[test]
    fn validate_rejects_backward_divergent_branch() {
        let p = Program::new(vec![
            add(0, 0),
            Instr::BraCond {
                pred: Operand::Reg(Reg(0)),
                when: BranchIf::NonZero,
                target: 0,
                reconv: 2,
            },
            Instr::Exit,
        ]);
        assert_eq!(
            p.validate(1, 0),
            Err(ProgramError::UnstructuredBranch { pc: 1 })
        );
    }

    #[test]
    fn validate_rejects_reconv_before_target() {
        let p = Program::new(vec![
            Instr::BraCond {
                pred: Operand::Reg(Reg(0)),
                when: BranchIf::NonZero,
                target: 2,
                reconv: 1,
            },
            add(0, 0),
            Instr::Exit,
        ]);
        assert_eq!(
            p.validate(1, 0),
            Err(ProgramError::UnstructuredBranch { pc: 0 })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_target() {
        let p = Program::new(vec![Instr::Bra { target: 9 }, Instr::Exit]);
        assert_eq!(
            p.validate(1, 0),
            Err(ProgramError::TargetOutOfRange { pc: 0, target: 9 })
        );
    }

    #[test]
    fn validate_rejects_static_shared_overflow() {
        let p = Program::new(vec![
            Instr::Ld {
                space: MemSpace::Shared,
                dst: Reg(0),
                addr: Operand::Imm(1024),
                offset: 0,
            },
            Instr::Exit,
        ]);
        assert_eq!(
            p.validate(1, 1024),
            Err(ProgramError::SharedOutOfRange { pc: 0 })
        );
        assert!(p.validate(1, 2048).is_ok());
    }

    #[test]
    fn validate_rejects_wrapped_shared_address() {
        // Regression: `base.wrapping_add(offset)` folded this address back
        // into range (0xFFFF_FFFC + 8 wraps to 4), sneaking past the
        // `saturating_add(4)` guard even though the immediate base is far
        // beyond any shared declaration.
        let wrap_high = Program::new(vec![
            Instr::St {
                space: MemSpace::Shared,
                addr: Operand::Imm(u32::MAX - 3),
                offset: 8,
                src: Operand::Imm(1),
            },
            Instr::Exit,
        ]);
        assert_eq!(
            wrap_high.validate(1, 1024),
            Err(ProgramError::SharedOutOfRange { pc: 0 })
        );

        // A negative offset that underflows past address zero is equally
        // out of range, not a wrap to the top of memory.
        let underflow = Program::new(vec![
            Instr::Ld {
                space: MemSpace::Shared,
                dst: Reg(0),
                addr: Operand::Imm(4),
                offset: -8,
            },
            Instr::Exit,
        ]);
        assert_eq!(
            underflow.validate(1, 1024),
            Err(ProgramError::SharedOutOfRange { pc: 0 })
        );

        // In-range negative offsets remain fine.
        let ok = Program::new(vec![
            Instr::Ld {
                space: MemSpace::Shared,
                dst: Reg(0),
                addr: Operand::Imm(64),
                offset: -64,
            },
            Instr::Exit,
        ]);
        assert!(ok.validate(1, 1024).is_ok());
    }

    #[test]
    fn mix_counts_categories() {
        let p = Program::new(vec![
            add(0, 0),
            Instr::Ld {
                space: MemSpace::Global,
                dst: Reg(0),
                addr: Operand::Imm(0),
                offset: 0,
            },
            Instr::Bar,
            Instr::Exit,
        ]);
        let m = p.mix();
        assert_eq!(m.alu, 1);
        assert_eq!(m.global_mem, 1);
        assert_eq!(m.barrier, 1);
        assert_eq!(m.control, 1);
        assert_eq!(m.shared_mem, 0);
    }
}
