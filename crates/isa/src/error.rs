//! Error types shared across the crate.

use std::error::Error;
use std::fmt;

/// Any error produced while building, parsing, validating or executing a
/// kernel.
///
/// The variants mirror the pipeline stages: [`IsaError::Program`] for static
/// validation, [`IsaError::Asm`] for the text assembler and
/// [`IsaError::Exec`] for functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// The program failed static validation.
    Program(ProgramError),
    /// The assembler rejected the source text.
    Asm(AsmError),
    /// Functional execution trapped.
    Exec(ExecError),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Program(e) => write!(f, "program validation failed: {e}"),
            IsaError::Asm(e) => write!(f, "assembly failed: {e}"),
            IsaError::Exec(e) => write!(f, "execution trapped: {e}"),
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::Program(e) => Some(e),
            IsaError::Asm(e) => Some(e),
            IsaError::Exec(e) => Some(e),
        }
    }
}

impl From<ProgramError> for IsaError {
    fn from(e: ProgramError) -> Self {
        IsaError::Program(e)
    }
}

impl From<AsmError> for IsaError {
    fn from(e: AsmError) -> Self {
        IsaError::Asm(e)
    }
}

impl From<ExecError> for IsaError {
    fn from(e: ExecError) -> Self {
        IsaError::Exec(e)
    }
}

/// A static validation failure in a [`crate::program::Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A register operand exceeds the kernel's declared register count.
    RegisterOutOfRange {
        /// Instruction index of the offending access.
        pc: usize,
        /// The register that was referenced.
        reg: u16,
        /// The declared per-thread register count.
        limit: u16,
    },
    /// A branch target points outside the program.
    TargetOutOfRange {
        /// Instruction index of the branch.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// A divergent branch is not structured: its reconvergence point must
    /// be a forward location at or after the taken target.
    UnstructuredBranch {
        /// Instruction index of the branch.
        pc: usize,
    },
    /// The program can run off the end (the last instruction is not an
    /// unconditional control transfer or `exit`).
    MissingExit,
    /// A shared-memory access offset is known statically to exceed the
    /// declared shared-memory size.
    SharedOutOfRange {
        /// Instruction index of the access.
        pc: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program is empty"),
            ProgramError::RegisterOutOfRange { pc, reg, limit } => {
                write!(f, "r{reg} at pc {pc} exceeds register count {limit}")
            }
            ProgramError::TargetOutOfRange { pc, target } => {
                write!(f, "branch at pc {pc} targets out-of-range pc {target}")
            }
            ProgramError::UnstructuredBranch { pc } => {
                write!(f, "divergent branch at pc {pc} is not structured")
            }
            ProgramError::MissingExit => write!(f, "control can run off the end of the program"),
            ProgramError::SharedOutOfRange { pc } => {
                write!(
                    f,
                    "shared-memory access at pc {pc} exceeds declared shared memory"
                )
            }
        }
    }
}

impl Error for ProgramError {}

/// A parse failure in [`crate::asm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the failure.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// A functional-execution trap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A memory access was not 4-byte aligned.
    Unaligned {
        /// The faulting byte address.
        addr: u32,
    },
    /// A global access fell outside the kernel's global memory image.
    GlobalOutOfRange {
        /// The faulting byte address.
        addr: u32,
    },
    /// A shared access fell outside the CTA's shared memory allocation.
    SharedOutOfRange {
        /// The faulting byte address.
        addr: u32,
    },
    /// A warp executed more than the configured instruction budget,
    /// indicating a runaway loop.
    InstructionBudgetExceeded,
    /// A barrier deadlock: some warps wait at a barrier that can never be
    /// released (e.g. divergent barrier).
    BarrierDeadlock,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Unaligned { addr } => write!(f, "unaligned access at {addr:#x}"),
            ExecError::GlobalOutOfRange { addr } => {
                write!(f, "global access out of range at {addr:#x}")
            }
            ExecError::SharedOutOfRange { addr } => {
                write!(f, "shared access out of range at {addr:#x}")
            }
            ExecError::InstructionBudgetExceeded => write!(f, "instruction budget exceeded"),
            ExecError::BarrierDeadlock => write!(f, "barrier deadlock"),
        }
    }
}

impl Error for ExecError {}
