//! # vt-isa — the SIMT mini-ISA of the Virtual Thread simulator
//!
//! This crate defines everything the timing simulator (`vt-sim`) and the
//! Virtual Thread architecture model (`vt-core`) need to *describe* and
//! *functionally execute* GPU kernels:
//!
//! * [`instr::Instr`] — a register-based SIMT instruction set with integer
//!   and float ALU ops, special-function ops, global/shared memory accesses,
//!   atomics, barriers and structured divergent control flow,
//! * [`kernel::Kernel`] — a program plus its launch geometry (1-D grid of
//!   1-D CTAs) and resource footprint (registers/thread, shared
//!   memory/CTA), the unit of work a GPU runs,
//! * [`builder::KernelBuilder`] — a typed DSL with structured control flow
//!   (`if_`, `if_else`, `while_`, `for_range`) that emits well-formed
//!   divergence (every divergent branch carries its reconvergence point),
//! * [`asm`] — a text assembler / disassembler for the same instruction set,
//! * [`exec`] — per-lane functional semantics shared by the reference
//!   interpreter and the timing simulator,
//! * [`simt::SimtStack`] — the immediate-post-dominator reconvergence stack,
//! * [`interp::Interpreter`] — a timing-free reference interpreter used as a
//!   functional oracle in tests,
//! * [`limits::SmLimits`] — the per-SM scheduling/capacity limit constants
//!   and the exact per-resource resident-CTA bounds they imply, shared by
//!   the timing simulator and the static analyzer.
//!
//! # Example
//!
//! Build a tiny vector-add kernel and run it on the reference interpreter:
//!
//! ```
//! use vt_isa::builder::KernelBuilder;
//! use vt_isa::interp::Interpreter;
//! use vt_isa::op::Operand;
//!
//! # fn main() -> Result<(), vt_isa::error::IsaError> {
//! let mut b = KernelBuilder::new("vecadd");
//! let n = 128u32;
//! let xs = b.alloc_global_init(&(0..n).collect::<Vec<u32>>());
//! let ys = b.alloc_global_init(&(0..n).map(|i| 10 * i).collect::<Vec<u32>>());
//! let out = b.alloc_global(n as usize);
//!
//! let gid = b.reg();
//! let a = b.reg();
//! let c = b.reg();
//! b.global_thread_id(gid);
//! b.shl(gid, Operand::Reg(gid), Operand::Imm(2)); // byte offset
//! b.ld_global(a, Operand::Reg(gid), xs as i32);
//! b.ld_global(c, Operand::Reg(gid), ys as i32);
//! b.add(a, Operand::Reg(a), Operand::Reg(c));
//! b.st_global(Operand::Reg(gid), out as i32, Operand::Reg(a));
//! b.exit();
//!
//! let kernel = b.build(2, 64)?; // 2 CTAs x 64 threads
//! let result = Interpreter::new(&kernel)?.run()?;
//! assert_eq!(result.load_words(out, n as usize)[5], 5 + 50);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod asm;
pub mod builder;
pub mod error;
pub mod exec;
pub mod instr;
pub mod interp;
pub mod kernel;
pub mod limits;
pub mod op;
pub mod program;
pub mod simt;

pub use builder::KernelBuilder;
pub use error::IsaError;
pub use instr::Instr;
pub use kernel::Kernel;
pub use limits::{CtaBounds, Limiter, SmLimits};
pub use op::{AluOp, AtomOp, BranchIf, MemSpace, Operand, Reg, SfuOp, Sreg};
pub use program::Program;
pub use simt::{SimtEntry, SimtStack};

/// Number of lanes in a warp. The whole simulator is built around 32-lane
/// warps, matching every NVIDIA GPU generation the paper targets.
pub const WARP_SIZE: u32 = 32;

/// A full 32-lane active mask.
pub const FULL_MASK: u32 = u32::MAX;
