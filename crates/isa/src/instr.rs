//! The instruction set.

use crate::op::{AluOp, AtomOp, BranchIf, MemSpace, Operand, Reg, SfuOp};
use std::fmt;

/// One SIMT instruction.
///
/// Control flow is *structured*: a divergent branch ([`Instr::BraCond`])
/// carries both its taken target and its reconvergence PC (the immediate
/// post-dominator of the branch), so the SIMT stack needs no separate
/// `SSY` marker. Uniform back-edges use [`Instr::Bra`], which never
/// diverges (all active lanes jump).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `dst = op(a, b)` on the SP pipeline.
    Alu {
        /// Operation to perform.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source (ignored by `Mov` and conversions).
        b: Operand,
    },
    /// Integer multiply-add `dst = a * b + c` on the SP pipeline.
    Mad {
        /// Destination register.
        dst: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// Float fused multiply-add `dst = a * b + c` on the SP pipeline.
    Ffma {
        /// Destination register.
        dst: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// `dst = op(a)` on the long-latency SFU pipeline.
    Sfu {
        /// Operation to perform.
        op: SfuOp,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        a: Operand,
    },
    /// Load a 32-bit word: `dst = mem[addr + offset]`.
    Ld {
        /// Address space.
        space: MemSpace,
        /// Destination register.
        dst: Reg,
        /// Base byte address.
        addr: Operand,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// Store a 32-bit word: `mem[addr + offset] = src`.
    St {
        /// Address space.
        space: MemSpace,
        /// Base byte address.
        addr: Operand,
        /// Byte offset added to the base.
        offset: i32,
        /// Value to store.
        src: Operand,
    },
    /// Atomic read-modify-write on global memory; the old value is written
    /// to `dst` if present.
    Atom {
        /// Read-modify-write operation.
        op: AtomOp,
        /// Receives the pre-update value, if requested.
        dst: Option<Reg>,
        /// Base byte address.
        addr: Operand,
        /// Byte offset added to the base.
        offset: i32,
        /// Operation input value.
        val: Operand,
    },
    /// CTA-wide barrier: the warp waits until every unfinished warp of the
    /// CTA has arrived.
    Bar,
    /// Uniform jump: all active lanes move to `target`. Never diverges.
    Bra {
        /// Target PC.
        target: usize,
    },
    /// Potentially-divergent conditional branch.
    ///
    /// Lanes whose predicate matches `when` jump to `target`; the rest fall
    /// through. If both groups are non-empty the warp diverges and will
    /// reconverge at `reconv` (the branch's immediate post-dominator).
    BraCond {
        /// Per-lane predicate source.
        pred: Operand,
        /// Branch polarity.
        when: BranchIf,
        /// Taken-path PC (must be a forward target).
        target: usize,
        /// Reconvergence PC (must be `>= target`).
        reconv: usize,
    },
    /// Terminate the active lanes of the warp.
    Exit,
}

impl Instr {
    /// The destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::Alu { dst, .. }
            | Instr::Mad { dst, .. }
            | Instr::Ffma { dst, .. }
            | Instr::Sfu { dst, .. }
            | Instr::Ld { dst, .. } => Some(*dst),
            Instr::Atom { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Source operands without allocating, `None`-padded to three slots.
    /// This sits on the simulator's per-cycle scheduling path.
    pub fn sources_fixed(&self) -> [Option<Operand>; 3] {
        match self {
            Instr::Alu { a, b, .. } => [Some(*a), Some(*b), None],
            Instr::Mad { a, b, c, .. } | Instr::Ffma { a, b, c, .. } => {
                [Some(*a), Some(*b), Some(*c)]
            }
            Instr::Sfu { a, .. } => [Some(*a), None, None],
            Instr::Ld { addr, .. } => [Some(*addr), None, None],
            Instr::St { addr, src, .. } => [Some(*addr), Some(*src), None],
            Instr::Atom { addr, val, .. } => [Some(*addr), Some(*val), None],
            Instr::BraCond { pred, .. } => [Some(*pred), None, None],
            Instr::Bar | Instr::Bra { .. } | Instr::Exit => [None, None, None],
        }
    }

    /// All source operands read by this instruction.
    pub fn sources(&self) -> Vec<Operand> {
        self.sources_fixed().into_iter().flatten().collect()
    }

    /// The registers read by this instruction (sources that are registers).
    pub fn src_regs(&self) -> Vec<Reg> {
        self.sources().into_iter().filter_map(|o| o.reg()).collect()
    }

    /// Whether this is a global or shared memory access (load, store or
    /// atomic) handled by the LD/ST pipeline.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. }
        )
    }

    /// Whether this accesses global memory (including atomics).
    pub fn is_global_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld {
                space: MemSpace::Global,
                ..
            } | Instr::St {
                space: MemSpace::Global,
                ..
            } | Instr::Atom { .. }
        )
    }

    /// Whether this instruction may change control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Bra { .. } | Instr::BraCond { .. } | Instr::Exit
        )
    }

    /// Whether the instruction only computes a register value — no memory
    /// traffic, no synchronisation, no control transfer. A pure
    /// instruction whose destination is never read afterwards is dead.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Instr::Alu { .. } | Instr::Mad { .. } | Instr::Ffma { .. } | Instr::Sfu { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, a, b } => match op {
                AluOp::Mov | AluOp::U2F | AluOp::F2U => {
                    write!(f, "{} {dst}, {a}", op.mnemonic())
                }
                _ => write!(f, "{} {dst}, {a}, {b}", op.mnemonic()),
            },
            Instr::Mad { dst, a, b, c } => write!(f, "mad {dst}, {a}, {b}, {c}"),
            Instr::Ffma { dst, a, b, c } => write!(f, "ffma {dst}, {a}, {b}, {c}"),
            Instr::Sfu { op, dst, a } => write!(f, "{} {dst}, {a}", op.mnemonic()),
            Instr::Ld {
                space,
                dst,
                addr,
                offset,
            } => {
                write!(f, "ld.{space} {dst}, [{addr}{offset:+}]")
            }
            Instr::St {
                space,
                addr,
                offset,
                src,
            } => {
                write!(f, "st.{space} [{addr}{offset:+}], {src}")
            }
            Instr::Atom {
                op,
                dst,
                addr,
                offset,
                val,
            } => match dst {
                Some(d) => write!(f, "atom.{}.g {d}, [{addr}{offset:+}], {val}", op.mnemonic()),
                None => write!(f, "atom.{}.g [{addr}{offset:+}], {val}", op.mnemonic()),
            },
            Instr::Bar => f.write_str("bar"),
            Instr::Bra { target } => write!(f, "bra @{target}"),
            Instr::BraCond {
                pred,
                when,
                target,
                reconv,
            } => {
                let pol = match when {
                    BranchIf::NonZero => "nz",
                    BranchIf::Zero => "z",
                };
                write!(f, "brc.{pol} {pred}, @{target}, @{reconv}")
            }
            Instr::Exit => f.write_str("exit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_and_sources() {
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: Reg(1),
            a: Operand::Reg(Reg(2)),
            b: Operand::Imm(3),
        };
        assert_eq!(i.dst(), Some(Reg(1)));
        assert_eq!(i.src_regs(), vec![Reg(2)]);
        assert!(!i.is_mem());
        assert!(!i.is_control());

        let ld = Instr::Ld {
            space: MemSpace::Global,
            dst: Reg(4),
            addr: Operand::Reg(Reg(5)),
            offset: 8,
        };
        assert!(ld.is_mem());
        assert!(ld.is_global_mem());
        assert_eq!(ld.dst(), Some(Reg(4)));

        let st = Instr::St {
            space: MemSpace::Shared,
            addr: Operand::Reg(Reg(1)),
            offset: 0,
            src: Operand::Reg(Reg(2)),
        };
        assert_eq!(st.dst(), None);
        assert!(!st.is_global_mem());
        assert_eq!(st.src_regs(), vec![Reg(1), Reg(2)]);
    }

    #[test]
    fn atom_dst_optional() {
        let a = Instr::Atom {
            op: AtomOp::Add,
            dst: None,
            addr: Operand::Reg(Reg(0)),
            offset: 0,
            val: Operand::Imm(1),
        };
        assert_eq!(a.dst(), None);
        assert!(a.is_global_mem());
    }

    #[test]
    fn display_round_trips_visually() {
        let i = Instr::BraCond {
            pred: Operand::Reg(Reg(7)),
            when: BranchIf::Zero,
            target: 12,
            reconv: 20,
        };
        assert_eq!(i.to_string(), "brc.z r7, @12, @20");
        assert_eq!(Instr::Bar.to_string(), "bar");
        assert_eq!(Instr::Exit.to_string(), "exit");
    }
}
