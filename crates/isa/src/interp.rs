//! A timing-free reference interpreter.
//!
//! Executes a kernel warp-synchronously (same SIMT-stack semantics as the
//! timing simulator) but with no resource or latency modelling: CTAs run
//! sequentially, warps round-robin between barriers. Tests use it as the
//! functional oracle the cycle-level simulator must agree with.

use crate::error::{ExecError, IsaError};
use crate::exec::{self, ThreadCtx};
use crate::instr::Instr;
use crate::kernel::{Kernel, MemImage};
use crate::op::{BranchIf, MemSpace};
use crate::simt::SimtStack;
use crate::WARP_SIZE;

/// Default per-CTA dynamic instruction budget; exceeding it aborts the run
/// with [`ExecError::InstructionBudgetExceeded`] (runaway loop guard).
pub const DEFAULT_INSTR_BUDGET: u64 = 50_000_000;

/// Outcome of a reference run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpResult {
    mem: MemImage,
    warp_instrs: u64,
    thread_instrs: u64,
    max_simt_depth: usize,
}

impl InterpResult {
    /// The final global-memory image.
    pub fn mem(&self) -> &MemImage {
        &self.mem
    }

    /// Reads `n` words from the final image at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (see [`MemImage::load_words`]).
    pub fn load_words(&self, addr: u32, n: usize) -> &[u32] {
        self.mem.load_words(addr, n)
    }

    /// Dynamic warp-instruction count (one per warp issue).
    pub fn warp_instrs(&self) -> u64 {
        self.warp_instrs
    }

    /// Dynamic thread-instruction count (one per active lane).
    pub fn thread_instrs(&self) -> u64 {
        self.thread_instrs
    }

    /// Deepest SIMT stack observed across all warps.
    pub fn max_simt_depth(&self) -> usize {
        self.max_simt_depth
    }
}

/// The reference interpreter. See the [module docs](self).
#[derive(Debug)]
pub struct Interpreter<'k> {
    kernel: &'k Kernel,
    budget_per_cta: u64,
}

struct WarpState {
    stack: SimtStack,
    /// `regs[lane][reg]`.
    regs: Vec<Vec<u32>>,
    first_tid: u32,
    at_barrier: bool,
}

impl<'k> Interpreter<'k> {
    /// Creates an interpreter for `kernel`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Program`] if the kernel's program fails
    /// validation (cannot happen for builder- or assembler-produced
    /// kernels).
    pub fn new(kernel: &'k Kernel) -> Result<Interpreter<'k>, IsaError> {
        kernel
            .program()
            .validate(kernel.regs_per_thread(), kernel.smem_bytes_per_cta())?;
        Ok(Interpreter {
            kernel,
            budget_per_cta: DEFAULT_INSTR_BUDGET,
        })
    }

    /// Overrides the per-CTA dynamic instruction budget.
    pub fn with_budget(mut self, budget: u64) -> Interpreter<'k> {
        self.budget_per_cta = budget;
        self
    }

    /// Runs the whole grid to completion.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Exec`] on a memory fault, barrier deadlock or
    /// exceeded instruction budget.
    pub fn run(&self) -> Result<InterpResult, IsaError> {
        let mut mem = self.kernel.global_mem().clone();
        let mut warp_instrs = 0u64;
        let mut thread_instrs = 0u64;
        let mut max_depth = 0usize;
        for cta in 0..self.kernel.num_ctas() {
            let (wi, ti, md) = self.run_cta(cta, &mut mem)?;
            warp_instrs += wi;
            thread_instrs += ti;
            max_depth = max_depth.max(md);
        }
        Ok(InterpResult {
            mem,
            warp_instrs,
            thread_instrs,
            max_simt_depth: max_depth,
        })
    }

    fn run_cta(&self, ctaid: u32, mem: &mut MemImage) -> Result<(u64, u64, usize), IsaError> {
        let k = self.kernel;
        let nthreads = k.threads_per_cta();
        let nwarps = k.warps_per_cta();
        let mut smem = vec![0u32; (k.smem_bytes_per_cta() as usize).div_ceil(4)];
        let mut warps: Vec<WarpState> = (0..nwarps)
            .map(|w| {
                let first_tid = w * WARP_SIZE;
                let lanes = (nthreads - first_tid).min(WARP_SIZE);
                let mask = if lanes == 32 {
                    u32::MAX
                } else {
                    (1u32 << lanes) - 1
                };
                WarpState {
                    stack: SimtStack::new(mask),
                    regs: vec![vec![0u32; k.regs_per_thread() as usize]; lanes as usize],
                    first_tid,
                    at_barrier: false,
                }
            })
            .collect();

        let mut warp_instrs = 0u64;
        let mut thread_instrs = 0u64;
        let budget = self.budget_per_cta;
        loop {
            let mut progressed = false;
            for warp in warps.iter_mut() {
                if warp.stack.is_done() || warp.at_barrier {
                    continue;
                }
                // Run this warp until it blocks or finishes; warps only
                // interact at barriers (and through atomics, whose order
                // we define as warp-id then lane-id).
                while !warp.stack.is_done() && !warp.at_barrier {
                    // Count the lanes active at issue, before the step can
                    // shrink the mask (divergence, exit) — matching how
                    // the timing simulator attributes thread instructions.
                    let active = warp.stack.active_mask();
                    self.step(warp, ctaid, mem, &mut smem)?;
                    warp_instrs += 1;
                    thread_instrs += u64::from(active.count_ones());
                    progressed = true;
                    if warp_instrs > budget {
                        return Err(ExecError::InstructionBudgetExceeded.into());
                    }
                }
            }
            let unfinished: Vec<&WarpState> = warps.iter().filter(|w| !w.stack.is_done()).collect();
            if unfinished.is_empty() {
                break;
            }
            if unfinished.iter().all(|w| w.at_barrier) {
                // Barrier release.
                for w in warps.iter_mut() {
                    w.at_barrier = false;
                }
            } else if !progressed {
                return Err(ExecError::BarrierDeadlock.into());
            }
        }
        let max_depth = warps.iter().map(|w| w.stack.max_depth()).max().unwrap_or(0);
        Ok((warp_instrs, thread_instrs, max_depth))
    }

    fn ctx(&self, warp: &WarpState, lane: u32, ctaid: u32) -> ThreadCtx {
        ThreadCtx {
            tid: warp.first_tid + lane,
            ctaid,
            ntid: self.kernel.threads_per_cta(),
            ncta: self.kernel.num_ctas(),
        }
    }

    fn step(
        &self,
        warp: &mut WarpState,
        ctaid: u32,
        mem: &mut MemImage,
        smem: &mut [u32],
    ) -> Result<(), ExecError> {
        let pc = warp.stack.pc();
        let mask = warp.stack.active_mask();
        let instr = *self.kernel.program().fetch(pc);
        match instr {
            Instr::Alu { op, dst, a, b } => {
                for_lanes(mask, |lane| {
                    let ctx = self.ctx(warp, lane, ctaid);
                    let regs = &mut warp.regs[lane as usize];
                    let va = exec::resolve(a, regs, &ctx);
                    let vb = exec::resolve(b, regs, &ctx);
                    regs[dst.0 as usize] = exec::eval_alu(op, va, vb);
                    Ok(())
                })?;
                warp.stack.advance();
            }
            Instr::Mad { dst, a, b, c } | Instr::Ffma { dst, a, b, c } => {
                let is_f = matches!(instr, Instr::Ffma { .. });
                for_lanes(mask, |lane| {
                    let ctx = self.ctx(warp, lane, ctaid);
                    let regs = &mut warp.regs[lane as usize];
                    let va = exec::resolve(a, regs, &ctx);
                    let vb = exec::resolve(b, regs, &ctx);
                    let vc = exec::resolve(c, regs, &ctx);
                    regs[dst.0 as usize] = if is_f {
                        exec::eval_ffma(va, vb, vc)
                    } else {
                        exec::eval_mad(va, vb, vc)
                    };
                    Ok(())
                })?;
                warp.stack.advance();
            }
            Instr::Sfu { op, dst, a } => {
                for_lanes(mask, |lane| {
                    let ctx = self.ctx(warp, lane, ctaid);
                    let regs = &mut warp.regs[lane as usize];
                    let va = exec::resolve(a, regs, &ctx);
                    regs[dst.0 as usize] = exec::eval_sfu(op, va);
                    Ok(())
                })?;
                warp.stack.advance();
            }
            Instr::Ld {
                space,
                dst,
                addr,
                offset,
            } => {
                for_lanes(mask, |lane| {
                    let ctx = self.ctx(warp, lane, ctaid);
                    let regs = &mut warp.regs[lane as usize];
                    let a = exec::resolve(addr, regs, &ctx).wrapping_add(offset as u32);
                    regs[dst.0 as usize] = load(space, a, mem, smem)?;
                    Ok(())
                })?;
                warp.stack.advance();
            }
            Instr::St {
                space,
                addr,
                offset,
                src,
            } => {
                for_lanes(mask, |lane| {
                    let ctx = self.ctx(warp, lane, ctaid);
                    let regs = &warp.regs[lane as usize];
                    let a = exec::resolve(addr, regs, &ctx).wrapping_add(offset as u32);
                    let v = exec::resolve(src, regs, &ctx);
                    store(space, a, v, mem, smem)
                })?;
                warp.stack.advance();
            }
            Instr::Atom {
                op,
                dst,
                addr,
                offset,
                val,
            } => {
                for_lanes(mask, |lane| {
                    let ctx = self.ctx(warp, lane, ctaid);
                    let regs = &mut warp.regs[lane as usize];
                    let a = exec::resolve(addr, regs, &ctx).wrapping_add(offset as u32);
                    let v = exec::resolve(val, regs, &ctx);
                    let old = load(MemSpace::Global, a, mem, smem)?;
                    let new = exec::eval_atom(op, old, v);
                    store(MemSpace::Global, a, new, mem, smem)?;
                    if let Some(d) = dst {
                        regs[d.0 as usize] = old;
                    }
                    Ok(())
                })?;
                warp.stack.advance();
            }
            Instr::Bar => {
                warp.at_barrier = true;
                warp.stack.advance();
            }
            Instr::Bra { target } => {
                warp.stack.jump(target);
            }
            Instr::BraCond {
                pred,
                when,
                target,
                reconv,
            } => {
                let mut taken = 0u32;
                for_lanes(mask, |lane| {
                    let ctx = self.ctx(warp, lane, ctaid);
                    let v = exec::resolve(pred, &warp.regs[lane as usize], &ctx);
                    let t = match when {
                        BranchIf::NonZero => v != 0,
                        BranchIf::Zero => v == 0,
                    };
                    if t {
                        taken |= 1 << lane;
                    }
                    Ok(())
                })?;
                warp.stack.branch(taken, target, reconv);
            }
            Instr::Exit => {
                warp.stack.exit();
            }
        }
        Ok(())
    }
}

fn for_lanes(mask: u32, mut f: impl FnMut(u32) -> Result<(), ExecError>) -> Result<(), ExecError> {
    let mut m = mask;
    while m != 0 {
        let lane = m.trailing_zeros();
        f(lane)?;
        m &= m - 1;
    }
    Ok(())
}

fn load(space: MemSpace, addr: u32, mem: &MemImage, smem: &[u32]) -> Result<u32, ExecError> {
    if !addr.is_multiple_of(4) {
        return Err(ExecError::Unaligned { addr });
    }
    match space {
        MemSpace::Global => mem.load(addr).ok_or(ExecError::GlobalOutOfRange { addr }),
        MemSpace::Shared => smem
            .get((addr / 4) as usize)
            .copied()
            .ok_or(ExecError::SharedOutOfRange { addr }),
    }
}

fn store(
    space: MemSpace,
    addr: u32,
    value: u32,
    mem: &mut MemImage,
    smem: &mut [u32],
) -> Result<(), ExecError> {
    if !addr.is_multiple_of(4) {
        return Err(ExecError::Unaligned { addr });
    }
    match space {
        MemSpace::Global => {
            if mem.store(addr, value) {
                Ok(())
            } else {
                Err(ExecError::GlobalOutOfRange { addr })
            }
        }
        MemSpace::Shared => match smem.get_mut((addr / 4) as usize) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(ExecError::SharedOutOfRange { addr }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::op::{AtomOp, Operand, Sreg};

    #[test]
    fn vecadd_matches_cpu() {
        let n = 96u32;
        let mut b = KernelBuilder::new("vecadd");
        let xs = b.alloc_global_init(&(0..n).collect::<Vec<u32>>());
        let ys = b.alloc_global_init(&(0..n).map(|i| i * 3).collect::<Vec<u32>>());
        let out = b.alloc_global(n as usize);
        let gid = b.reg();
        let off = b.reg();
        let a = b.reg();
        let c = b.reg();
        b.global_thread_id(gid);
        b.shl(off, Operand::Reg(gid), Operand::Imm(2));
        b.ld_global(a, Operand::Reg(off), xs as i32);
        b.ld_global(c, Operand::Reg(off), ys as i32);
        b.add(a, Operand::Reg(a), Operand::Reg(c));
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(a));
        b.exit();
        let k = b.build(3, 32).unwrap();
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        for i in 0..n {
            assert_eq!(r.load_words(out + 4 * i, 1)[0], i + i * 3);
        }
        assert_eq!(r.warp_instrs(), 3 * 7);
    }

    #[test]
    fn divergent_if_else() {
        // Even lanes write 1, odd lanes write 2.
        let mut b = KernelBuilder::new("div");
        let out = b.alloc_global(64);
        let gid = b.reg();
        let off = b.reg();
        let p = b.reg();
        let v = b.reg();
        b.global_thread_id(gid);
        b.shl(off, Operand::Reg(gid), Operand::Imm(2));
        b.and_(p, Operand::Reg(gid), Operand::Imm(1));
        b.if_else(
            Operand::Reg(p),
            |b| b.mov(v, Operand::Imm(2)),
            |b| b.mov(v, Operand::Imm(1)),
        );
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(v));
        b.exit();
        let k = b.build(2, 32).unwrap();
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        for i in 0..64u32 {
            let expect = if i % 2 == 1 { 2 } else { 1 };
            assert_eq!(r.load_words(out + 4 * i, 1)[0], expect, "thread {i}");
        }
        assert!(r.max_simt_depth() >= 3);
    }

    #[test]
    fn loop_sum() {
        // Each thread sums 0..tid into out[tid].
        let mut b = KernelBuilder::new("loopsum");
        let out = b.alloc_global(32);
        let i = b.reg();
        let acc = b.reg();
        let off = b.reg();
        b.mov(acc, Operand::Imm(0));
        b.for_range(i, Operand::Imm(0), Operand::Sreg(Sreg::Tid), 1, |b, i| {
            b.add(acc, Operand::Reg(acc), Operand::Reg(i));
        });
        b.shl(off, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(acc));
        b.exit();
        let k = b.build(1, 32).unwrap();
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        for t in 0..32u32 {
            assert_eq!(
                r.load_words(out + 4 * t, 1)[0],
                (0..t).sum::<u32>(),
                "thread {t}"
            );
        }
    }

    #[test]
    fn shared_memory_reduction_with_barrier() {
        // CTA-wide sum of tids via shared memory tree reduction.
        let nt = 64u32;
        let mut b = KernelBuilder::new("reduce");
        let out = b.alloc_global(1);
        let buf = b.alloc_shared(nt);
        let soff = b.reg();
        let stride = b.reg();
        let p = b.reg();
        let x = b.reg();
        let y = b.reg();
        let other = b.reg();
        b.shl(soff, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
        b.st_shared(Operand::Reg(soff), buf as i32, Operand::Sreg(Sreg::Tid));
        b.bar();
        b.mov(stride, Operand::Imm(nt / 2));
        b.while_(
            |b| {
                let c = b.reg();
                b.set_gt(c, Operand::Reg(stride), Operand::Imm(0));
                Operand::Reg(c)
            },
            |b| {
                b.set_lt(p, Operand::Sreg(Sreg::Tid), Operand::Reg(stride));
                b.if_(Operand::Reg(p), |b| {
                    b.add(other, Operand::Sreg(Sreg::Tid), Operand::Reg(stride));
                    b.shl(other, Operand::Reg(other), Operand::Imm(2));
                    b.ld_shared(x, Operand::Reg(soff), buf as i32);
                    b.ld_shared(y, Operand::Reg(other), buf as i32);
                    b.add(x, Operand::Reg(x), Operand::Reg(y));
                    b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(x));
                });
                b.bar();
                b.shr(stride, Operand::Reg(stride), Operand::Imm(1));
            },
        );
        b.set_eq(p, Operand::Sreg(Sreg::Tid), Operand::Imm(0));
        b.if_(Operand::Reg(p), |b| {
            b.ld_shared(x, Operand::Reg(soff), buf as i32);
            b.st_global(Operand::Imm(out), 0, Operand::Reg(x));
        });
        b.exit();
        let k = b.build(1, nt).unwrap();
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(r.load_words(out, 1)[0], (0..nt).sum::<u32>());
    }

    #[test]
    fn atomics_accumulate_across_ctas() {
        let mut b = KernelBuilder::new("atom");
        let out = b.alloc_global(1);
        b.atom(AtomOp::Add, None, Operand::Imm(out), 0, Operand::Imm(1));
        b.exit();
        let k = b.build(4, 64).unwrap();
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(r.load_words(out, 1)[0], 4 * 64);
    }

    #[test]
    fn partial_warp_only_runs_live_threads() {
        let mut b = KernelBuilder::new("partial");
        let out = b.alloc_global(64);
        let off = b.reg();
        let gid = b.reg();
        b.global_thread_id(gid);
        b.shl(off, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(off), out as i32, Operand::Imm(7));
        b.exit();
        let k = b.build(1, 40).unwrap(); // 40 threads: warp1 has 8 lanes
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        for t in 0..64u32 {
            let expect = if t < 40 { 7 } else { 0 };
            assert_eq!(r.load_words(out + 4 * t, 1)[0], expect);
        }
    }

    #[test]
    fn warps_that_exit_early_release_the_barrier() {
        // Warp 0 (tids 0-31) exits before the barrier; warp 1 waits at it.
        // The release condition must track live warps, not launched warps.
        let mut b = KernelBuilder::new("skipbar");
        let out = b.alloc_global(64);
        let p = b.reg();
        let off = b.reg();
        b.set_lt(p, Operand::Sreg(Sreg::WarpId), Operand::Imm(1));
        b.if_(Operand::Reg(p), |b| {
            b.exit();
        });
        b.bar();
        b.global_thread_id(off);
        b.shl(off, Operand::Reg(off), Operand::Imm(2));
        b.st_global(Operand::Reg(off), out as i32, Operand::Imm(9));
        b.exit();
        let k = b.build(1, 64).unwrap();
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(r.load_words(out, 1)[0], 0, "warp 0 skipped the store");
        assert_eq!(
            r.load_words(out + 4 * 32, 1)[0],
            9,
            "warp 1 passed the barrier"
        );
    }

    #[test]
    fn out_of_range_load_traps() {
        let mut b = KernelBuilder::new("oob");
        let r0 = b.reg();
        b.ld_global(r0, Operand::Imm(1 << 20), 0);
        b.exit();
        let k = b.build(1, 32).unwrap();
        let err = Interpreter::new(&k).unwrap().run().unwrap_err();
        assert!(matches!(
            err,
            IsaError::Exec(ExecError::GlobalOutOfRange { .. })
        ));
    }

    #[test]
    fn runaway_loop_hits_budget() {
        let mut b = KernelBuilder::new("spin");
        b.while_(|_| Operand::Imm(1), |_| {});
        b.exit();
        let k = b.build(1, 32).unwrap();
        let err = Interpreter::new(&k)
            .unwrap()
            .with_budget(10_000)
            .run()
            .unwrap_err();
        assert_eq!(err, IsaError::Exec(ExecError::InstructionBudgetExceeded));
    }
}
