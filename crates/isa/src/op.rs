//! Operand and opcode vocabulary of the mini-ISA.

use std::fmt;

/// A general-purpose 32-bit register index within a thread's register frame.
///
/// Register indices are validated against the kernel's declared
/// `regs_per_thread` by [`crate::program::Program::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Read-only special registers exposing the thread's position in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sreg {
    /// Thread index within the CTA (`threadIdx.x`).
    Tid,
    /// CTA index within the grid (`blockIdx.x`).
    CtaId,
    /// Threads per CTA (`blockDim.x`).
    NTid,
    /// CTAs in the grid (`gridDim.x`).
    NCta,
    /// Lane index within the warp (0..32).
    Lane,
    /// Warp index within the CTA.
    WarpId,
}

impl Sreg {
    /// Whether the special register's value can differ between threads of
    /// the same CTA. `%ctaid`, `%ntid` and `%ncta` are CTA-uniform;
    /// `%tid`, `%lane` and `%warpid` are not. Divergence and barrier
    /// analyses seed their uniformity lattice from this.
    pub fn is_thread_varying(&self) -> bool {
        matches!(self, Sreg::Tid | Sreg::Lane | Sreg::WarpId)
    }
}

impl fmt::Display for Sreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sreg::Tid => "%tid",
            Sreg::CtaId => "%ctaid",
            Sreg::NTid => "%ntid",
            Sreg::NCta => "%ncta",
            Sreg::Lane => "%lane",
            Sreg::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

/// A source operand: a register, a 32-bit immediate or a special register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Value of a general-purpose register.
    Reg(Reg),
    /// A 32-bit immediate constant.
    Imm(u32),
    /// Value of a special register.
    Sreg(Sreg),
}

impl Operand {
    /// The register read by this operand, if any.
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// A float immediate, stored as its IEEE-754 bit pattern.
    pub fn fimm(v: f32) -> Operand {
        Operand::Imm(v.to_bits())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Sreg(s) => write!(f, "{s}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

/// Binary (and unary-via-`Mov`) ALU operations executed on the SP pipeline.
///
/// Integer ops treat values as `u32` with wrapping semantics unless the name
/// carries an `S` suffix (signed comparison). Float ops reinterpret the bit
/// pattern as IEEE-754 `f32`. Comparison ops produce `1` or `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `dst = a` (second source ignored).
    Mov,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// High 32 bits of the 64-bit unsigned product.
    MulHi,
    /// Unsigned division; division by zero yields `u32::MAX` like PTX.
    Div,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Rem,
    /// Unsigned minimum.
    Min,
    /// Unsigned maximum.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (shift amount masked to 5 bits).
    Shl,
    /// Logical right shift (shift amount masked to 5 bits).
    Shr,
    /// Unsigned `a < b`.
    SetLt,
    /// Unsigned `a <= b`.
    SetLe,
    /// `a == b`.
    SetEq,
    /// `a != b`.
    SetNe,
    /// Unsigned `a > b`.
    SetGt,
    /// Unsigned `a >= b`.
    SetGe,
    /// Signed `a < b`.
    SetLtS,
    /// Signed `a >= b`.
    SetGeS,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float minimum (NaN-propagating like `f32::min`).
    FMin,
    /// Float maximum.
    FMax,
    /// Float `a < b`.
    FSetLt,
    /// Float `a <= b`.
    FSetLe,
    /// Float `a > b`.
    FSetGt,
    /// Convert unsigned integer to float.
    U2F,
    /// Convert float to unsigned integer (saturating, NaN → 0).
    F2U,
}

impl AluOp {
    /// Mnemonic used by the assembler.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            AluOp::Mov => "mov",
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::MulHi => "mulhi",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::SetLt => "set.lt",
            AluOp::SetLe => "set.le",
            AluOp::SetEq => "set.eq",
            AluOp::SetNe => "set.ne",
            AluOp::SetGt => "set.gt",
            AluOp::SetGe => "set.ge",
            AluOp::SetLtS => "set.lts",
            AluOp::SetGeS => "set.ges",
            AluOp::FAdd => "fadd",
            AluOp::FSub => "fsub",
            AluOp::FMul => "fmul",
            AluOp::FMin => "fmin",
            AluOp::FMax => "fmax",
            AluOp::FSetLt => "fset.lt",
            AluOp::FSetLe => "fset.le",
            AluOp::FSetGt => "fset.gt",
            AluOp::U2F => "u2f",
            AluOp::F2U => "f2u",
        }
    }

    /// All ALU opcodes, for the assembler's mnemonic table and for
    /// property-test generation.
    pub const ALL: &'static [AluOp] = &[
        AluOp::Mov,
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::MulHi,
        AluOp::Div,
        AluOp::Rem,
        AluOp::Min,
        AluOp::Max,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::SetLt,
        AluOp::SetLe,
        AluOp::SetEq,
        AluOp::SetNe,
        AluOp::SetGt,
        AluOp::SetGe,
        AluOp::SetLtS,
        AluOp::SetGeS,
        AluOp::FAdd,
        AluOp::FSub,
        AluOp::FMul,
        AluOp::FMin,
        AluOp::FMax,
        AluOp::FSetLt,
        AluOp::FSetLe,
        AluOp::FSetGt,
        AluOp::U2F,
        AluOp::F2U,
    ];
}

/// Long-latency transcendental operations executed on the SFU pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuOp {
    /// Reciprocal `1/x`.
    Rcp,
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsqrt,
    /// Base-2 exponential.
    Exp2,
    /// Base-2 logarithm.
    Log2,
    /// Sine (argument in radians).
    Sin,
}

impl SfuOp {
    /// Mnemonic used by the assembler.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            SfuOp::Rcp => "rcp",
            SfuOp::Sqrt => "sqrt",
            SfuOp::Rsqrt => "rsqrt",
            SfuOp::Exp2 => "exp2",
            SfuOp::Log2 => "log2",
            SfuOp::Sin => "sin",
        }
    }

    /// All SFU opcodes.
    pub const ALL: &'static [SfuOp] = &[
        SfuOp::Rcp,
        SfuOp::Sqrt,
        SfuOp::Rsqrt,
        SfuOp::Exp2,
        SfuOp::Log2,
        SfuOp::Sin,
    ];
}

/// Read-modify-write operations for `atom.*` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// Atomic wrapping add; returns the old value.
    Add,
    /// Atomic unsigned max; returns the old value.
    Max,
    /// Atomic unsigned min; returns the old value.
    Min,
    /// Atomic exchange; returns the old value.
    Exch,
}

impl AtomOp {
    /// Mnemonic used by the assembler.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            AtomOp::Add => "add",
            AtomOp::Max => "max",
            AtomOp::Min => "min",
            AtomOp::Exch => "exch",
        }
    }
}

/// Address space of a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device memory, served by L1 → L2 → DRAM.
    Global,
    /// Per-CTA scratchpad, served by the banked shared memory.
    Shared,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Global => f.write_str("g"),
            MemSpace::Shared => f.write_str("s"),
        }
    }
}

/// Polarity of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchIf {
    /// Taken by lanes whose predicate value is non-zero.
    NonZero,
    /// Taken by lanes whose predicate value is zero.
    Zero,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(3)), Operand::Reg(Reg(3)));
        assert_eq!(Operand::from(7u32), Operand::Imm(7));
        assert_eq!(Operand::Reg(Reg(3)).reg(), Some(Reg(3)));
        assert_eq!(Operand::Imm(1).reg(), None);
    }

    #[test]
    fn float_immediate_round_trips() {
        let op = Operand::fimm(1.5);
        match op {
            Operand::Imm(bits) => assert_eq!(f32::from_bits(bits), 1.5),
            _ => panic!("expected immediate"),
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Reg(4).to_string(), "r4");
        assert_eq!(Sreg::Tid.to_string(), "%tid");
        assert_eq!(Operand::Imm(12).to_string(), "12");
        assert_eq!(MemSpace::Global.to_string(), "g");
        for op in AluOp::ALL {
            assert!(!op.mnemonic().is_empty());
        }
        for op in SfuOp::ALL {
            assert!(!op.mnemonic().is_empty());
        }
    }

    #[test]
    fn alu_all_has_no_duplicates() {
        for (i, a) in AluOp::ALL.iter().enumerate() {
            for b in &AluOp::ALL[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a.mnemonic(), b.mnemonic());
            }
        }
    }
}
