//! Text assembler and disassembler for the mini-ISA.
//!
//! The textual syntax is exactly what [`crate::instr::Instr`]'s `Display`
//! implementation prints, so `assemble(disassemble(p)) == p` — a property
//! the test suite checks for arbitrary programs.
//!
//! # Syntax
//!
//! ```text
//! ; a comment
//! .kernel saxpy        ; optional kernel name
//! .grid 16 128         ; CTAs, threads per CTA (default 1 32)
//! .regs 24             ; register-footprint floor (default: inferred)
//! .smem 2048           ; shared-memory bytes per CTA (default 0)
//! .globalmem 4096      ; global memory words, zero-initialised (default 0)
//!
//! @top:
//!     mad r0, %ctaid, %ntid, %tid
//!     shl r0, r0, 2
//!     ld.g r1, [r0+0]
//!     fadd r1, r1, 1.0f
//!     st.g [r0+0], r1
//!     brc.nz r1, @top, @done
//! @done:
//!     exit
//! ```
//!
//! Branch targets may be `@label` references or `@<pc>` absolute indices
//! (the form the disassembler emits).

use crate::error::{AsmError, IsaError};
use crate::instr::Instr;
use crate::kernel::{Kernel, MemImage};
use crate::op::{AluOp, AtomOp, BranchIf, MemSpace, Operand, Reg, SfuOp, Sreg};
use crate::program::Program;
use std::collections::HashMap;

/// Assembles a full kernel, honouring the `.kernel`, `.grid`, `.regs`,
/// `.smem` and `.globalmem` directives.
///
/// # Errors
///
/// Returns [`IsaError::Asm`] on a syntax error and [`IsaError::Program`]
/// if the assembled program fails validation.
pub fn assemble(src: &str) -> Result<Kernel, IsaError> {
    let parsed = parse(src)?;
    let regs = parsed
        .max_reg_seen
        .map_or(1, |r| r + 1)
        .max(parsed.regs_directive.unwrap_or(0));
    let kernel = Kernel::new(
        parsed.name.unwrap_or_else(|| "kernel".to_string()),
        Program::new(parsed.instrs),
        parsed.grid.0,
        parsed.grid.1,
        regs,
        parsed.smem,
        MemImage::zeroed(parsed.global_words),
    )?;
    Ok(kernel)
}

/// Assembles only the instruction stream, ignoring directives. Useful for
/// program fragments in tests.
///
/// # Errors
///
/// Returns [`AsmError`] on any syntax error.
pub fn assemble_program(src: &str) -> Result<Program, AsmError> {
    Ok(Program::new(parse(src)?.instrs))
}

/// Renders a program in assembler syntax, one instruction per line with
/// absolute `@pc` branch targets.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for (_, i) in program.iter() {
        out.push_str(&i.to_string());
        out.push('\n');
    }
    out
}

struct Parsed {
    name: Option<String>,
    grid: (u32, u32),
    regs_directive: Option<u16>,
    smem: u32,
    global_words: usize,
    instrs: Vec<Instr>,
    max_reg_seen: Option<u16>,
}

fn parse(src: &str) -> Result<Parsed, AsmError> {
    // Pass 1: strip comments, gather labels and instruction lines.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut lines: Vec<(usize, String)> = Vec::new(); // (source line, text)
    let mut directives: Vec<(usize, String)> = Vec::new();
    let mut pc = 0usize;
    for (ln, raw) in src.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = ln + 1;
        if let Some(rest) = line.strip_prefix('@') {
            if let Some(label) = rest.strip_suffix(':') {
                let label = label.trim();
                if label.is_empty() {
                    return err(lineno, "empty label");
                }
                if labels.insert(label.to_string(), pc).is_some() {
                    return err(lineno, format!("duplicate label @{label}"));
                }
                continue;
            }
        }
        if line.starts_with('.') {
            directives.push((lineno, line.to_string()));
            continue;
        }
        lines.push((lineno, line.to_string()));
        pc += 1;
    }

    let mut parsed = Parsed {
        name: None,
        grid: (1, 32),
        regs_directive: None,
        smem: 0,
        global_words: 0,
        instrs: Vec::with_capacity(lines.len()),
        max_reg_seen: None,
    };

    for (lineno, d) in directives {
        let mut it = d.split_whitespace();
        let head = it.next().unwrap_or("");
        match head {
            ".kernel" => {
                parsed.name = Some(
                    it.next()
                        .ok_or_else(|| err_val(lineno, ".kernel needs a name"))?
                        .to_string(),
                );
            }
            ".grid" => {
                let nc = parse_u32(it.next(), lineno, ".grid needs CTA count")?;
                let nt = parse_u32(it.next(), lineno, ".grid needs threads per CTA")?;
                parsed.grid = (nc, nt);
            }
            ".regs" => {
                parsed.regs_directive =
                    Some(parse_u32(it.next(), lineno, ".regs needs a count")? as u16);
            }
            ".smem" => {
                parsed.smem = parse_u32(it.next(), lineno, ".smem needs bytes")?;
            }
            ".globalmem" => {
                parsed.global_words =
                    parse_u32(it.next(), lineno, ".globalmem needs words")? as usize;
            }
            other => return err(lineno, format!("unknown directive {other}")),
        }
    }

    // Pass 2: parse instructions.
    for (lineno, line) in lines {
        let instr = parse_instr(&line, lineno, &labels)?;
        track_regs(&instr, &mut parsed.max_reg_seen);
        parsed.instrs.push(instr);
    }
    Ok(parsed)
}

fn track_regs(i: &Instr, max: &mut Option<u16>) {
    let mut see = |r: Reg| {
        *max = Some(max.map_or(r.0, |m| m.max(r.0)));
    };
    if let Some(d) = i.dst() {
        see(d);
    }
    for r in i.src_regs() {
        see(r);
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

fn err_val(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_u32(tok: Option<&str>, line: usize, msg: &str) -> Result<u32, AsmError> {
    let t = tok.ok_or_else(|| err_val(line, msg))?;
    parse_imm(t).ok_or_else(|| err_val(line, format!("bad number `{t}`")))
}

fn parse_imm(t: &str) -> Option<u32> {
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16).ok();
    }
    if let Some(fl) = t.strip_suffix('f') {
        return fl.parse::<f32>().ok().map(f32::to_bits);
    }
    if let Some(neg) = t.strip_prefix('-') {
        return neg.parse::<u32>().ok().map(u32::wrapping_neg);
    }
    t.parse::<u32>().ok()
}

fn parse_reg(t: &str, line: usize) -> Result<Reg, AsmError> {
    t.strip_prefix('r')
        .and_then(|n| n.parse::<u16>().ok())
        .map(Reg)
        .ok_or_else(|| err_val(line, format!("expected register, got `{t}`")))
}

fn parse_operand(t: &str, line: usize) -> Result<Operand, AsmError> {
    if let Some(s) = t.strip_prefix('%') {
        let sreg = match s {
            "tid" => Sreg::Tid,
            "ctaid" => Sreg::CtaId,
            "ntid" => Sreg::NTid,
            "ncta" => Sreg::NCta,
            "lane" => Sreg::Lane,
            "warpid" => Sreg::WarpId,
            other => return err(line, format!("unknown special register %{other}")),
        };
        return Ok(Operand::Sreg(sreg));
    }
    if t.starts_with('r') && t[1..].chars().all(|c| c.is_ascii_digit()) && t.len() > 1 {
        return Ok(Operand::Reg(parse_reg(t, line)?));
    }
    parse_imm(t)
        .map(Operand::Imm)
        .ok_or_else(|| err_val(line, format!("bad operand `{t}`")))
}

/// Parses `[base+off]` / `[base-off]` / `[base]`.
fn parse_addr(t: &str, line: usize) -> Result<(Operand, i32), AsmError> {
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err_val(line, format!("expected [addr], got `{t}`")))?;
    // Find a +/- separating base from offset (not a leading sign).
    let mut split_at = None;
    for (i, c) in inner.char_indices().skip(1) {
        if c == '+' || c == '-' {
            split_at = Some(i);
            break;
        }
    }
    match split_at {
        Some(i) => {
            let base = parse_operand(inner[..i].trim(), line)?;
            let off_str = inner[i..].trim();
            let off: i64 = off_str
                .parse()
                .map_err(|_| err_val(line, format!("bad offset `{off_str}`")))?;
            Ok((base, off as i32))
        }
        None => Ok((parse_operand(inner.trim(), line)?, 0)),
    }
}

fn parse_target(t: &str, line: usize, labels: &HashMap<String, usize>) -> Result<usize, AsmError> {
    let name = t
        .strip_prefix('@')
        .ok_or_else(|| err_val(line, format!("expected @target, got `{t}`")))?;
    if let Ok(pc) = name.parse::<usize>() {
        return Ok(pc);
    }
    labels
        .get(name)
        .copied()
        .ok_or_else(|| err_val(line, format!("unknown label @{name}")))
}

fn alu_by_mnemonic(m: &str) -> Option<AluOp> {
    AluOp::ALL.iter().copied().find(|op| op.mnemonic() == m)
}

fn sfu_by_mnemonic(m: &str) -> Option<SfuOp> {
    SfuOp::ALL.iter().copied().find(|op| op.mnemonic() == m)
}

fn parse_instr(
    line: &str,
    lineno: usize,
    labels: &HashMap<String, usize>,
) -> Result<Instr, AsmError> {
    let (mnem, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            err(
                lineno,
                format!("{mnem} expects {n} operands, got {}", args.len()),
            )
        }
    };

    match mnem {
        "bar" => {
            want(0)?;
            Ok(Instr::Bar)
        }
        "exit" => {
            want(0)?;
            Ok(Instr::Exit)
        }
        "bra" => {
            want(1)?;
            Ok(Instr::Bra {
                target: parse_target(args[0], lineno, labels)?,
            })
        }
        "brc.nz" | "brc.z" => {
            want(3)?;
            Ok(Instr::BraCond {
                pred: parse_operand(args[0], lineno)?,
                when: if mnem == "brc.nz" {
                    BranchIf::NonZero
                } else {
                    BranchIf::Zero
                },
                target: parse_target(args[1], lineno, labels)?,
                reconv: parse_target(args[2], lineno, labels)?,
            })
        }
        "mad" | "ffma" => {
            want(4)?;
            let dst = parse_reg(args[0], lineno)?;
            let a = parse_operand(args[1], lineno)?;
            let b = parse_operand(args[2], lineno)?;
            let c = parse_operand(args[3], lineno)?;
            Ok(if mnem == "mad" {
                Instr::Mad { dst, a, b, c }
            } else {
                Instr::Ffma { dst, a, b, c }
            })
        }
        "ld.g" | "ld.s" => {
            want(2)?;
            let (addr, offset) = parse_addr(args[1], lineno)?;
            Ok(Instr::Ld {
                space: if mnem == "ld.g" {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                },
                dst: parse_reg(args[0], lineno)?,
                addr,
                offset,
            })
        }
        "st.g" | "st.s" => {
            want(2)?;
            let (addr, offset) = parse_addr(args[0], lineno)?;
            Ok(Instr::St {
                space: if mnem == "st.g" {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                },
                addr,
                offset,
                src: parse_operand(args[1], lineno)?,
            })
        }
        _ if mnem.starts_with("atom.") => {
            let op_name = mnem.trim_start_matches("atom.").trim_end_matches(".g");
            let op = match op_name {
                "add" => AtomOp::Add,
                "max" => AtomOp::Max,
                "min" => AtomOp::Min,
                "exch" => AtomOp::Exch,
                other => return err(lineno, format!("unknown atomic `{other}`")),
            };
            match args.len() {
                2 => {
                    let (addr, offset) = parse_addr(args[0], lineno)?;
                    Ok(Instr::Atom {
                        op,
                        dst: None,
                        addr,
                        offset,
                        val: parse_operand(args[1], lineno)?,
                    })
                }
                3 => {
                    let (addr, offset) = parse_addr(args[1], lineno)?;
                    Ok(Instr::Atom {
                        op,
                        dst: Some(parse_reg(args[0], lineno)?),
                        addr,
                        offset,
                        val: parse_operand(args[2], lineno)?,
                    })
                }
                n => err(lineno, format!("atom expects 2 or 3 operands, got {n}")),
            }
        }
        _ => {
            if let Some(op) = sfu_by_mnemonic(mnem) {
                want(2)?;
                return Ok(Instr::Sfu {
                    op,
                    dst: parse_reg(args[0], lineno)?,
                    a: parse_operand(args[1], lineno)?,
                });
            }
            if let Some(op) = alu_by_mnemonic(mnem) {
                let unary = matches!(op, AluOp::Mov | AluOp::U2F | AluOp::F2U);
                if unary {
                    want(2)?;
                    return Ok(Instr::Alu {
                        op,
                        dst: parse_reg(args[0], lineno)?,
                        a: parse_operand(args[1], lineno)?,
                        b: Operand::Imm(0),
                    });
                }
                want(3)?;
                return Ok(Instr::Alu {
                    op,
                    dst: parse_reg(args[0], lineno)?,
                    a: parse_operand(args[1], lineno)?,
                    b: parse_operand(args[2], lineno)?,
                });
            }
            err(lineno, format!("unknown mnemonic `{mnem}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;

    #[test]
    fn assembles_and_runs_saxpy_like_kernel() {
        let src = r"
            .kernel saxpy
            .grid 2 64
            .globalmem 256
            ; out[gid] = gid * 3
            mad r0, %ctaid, %ntid, %tid
            mul r1, r0, 3
            shl r2, r0, 2
            st.g [r2+0], r1
            exit
        ";
        let k = assemble(src).unwrap();
        assert_eq!(k.name(), "saxpy");
        assert_eq!(k.num_ctas(), 2);
        assert_eq!(k.threads_per_cta(), 64);
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(r.load_words(4 * 100, 1)[0], 300);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let src = r"
            mov r0, 4
            @top:
            sub r0, r0, 1
            brc.nz r0, @top2, @done
            @top2:
            bra @top
            @done:
            exit
        ";
        let p = assemble_program(src).unwrap();
        assert_eq!(*p.fetch(3), Instr::Bra { target: 1 });
        match *p.fetch(2) {
            Instr::BraCond { target, reconv, .. } => {
                assert_eq!(target, 3);
                assert_eq!(reconv, 4);
            }
            ref o => panic!("unexpected {o}"),
        }
    }

    #[test]
    fn numeric_targets_parse() {
        let p = assemble_program("bra @0").unwrap();
        assert_eq!(*p.fetch(0), Instr::Bra { target: 0 });
    }

    #[test]
    fn float_and_hex_immediates() {
        let p =
            assemble_program("fadd r0, r1, 1.5f\nand r2, r3, 0xff\nadd r0, r0, -1\nexit").unwrap();
        match *p.fetch(0) {
            Instr::Alu {
                b: Operand::Imm(bits),
                ..
            } => {
                assert_eq!(f32::from_bits(bits), 1.5)
            }
            ref o => panic!("unexpected {o}"),
        }
        match *p.fetch(1) {
            Instr::Alu {
                b: Operand::Imm(255),
                ..
            } => {}
            ref o => panic!("unexpected {o}"),
        }
        match *p.fetch(2) {
            Instr::Alu {
                b: Operand::Imm(v), ..
            } => assert_eq!(v, u32::MAX),
            ref o => panic!("unexpected {o}"),
        }
    }

    #[test]
    fn negative_offsets_parse() {
        let p = assemble_program("ld.s r0, [r1-8]").unwrap();
        match *p.fetch(0) {
            Instr::Ld { offset, .. } => assert_eq!(offset, -8),
            ref o => panic!("unexpected {o}"),
        }
    }

    #[test]
    fn atom_forms() {
        let p = assemble_program("atom.add.g r0, [r1+4], 2\natom.max.g [r1+0], r2").unwrap();
        assert!(matches!(
            *p.fetch(0),
            Instr::Atom {
                op: AtomOp::Add,
                dst: Some(Reg(0)),
                ..
            }
        ));
        assert!(matches!(
            *p.fetch(1),
            Instr::Atom {
                op: AtomOp::Max,
                dst: None,
                ..
            }
        ));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble_program("mov r0, 1\nbogus r1, r2").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble_program("bra @missing").unwrap_err();
        assert!(e.message.contains("missing"));
        let e = assemble_program("@dup:\n@dup:\nexit").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = assemble_program("add r0, r1").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn disassemble_then_reassemble_is_identity() {
        let src = r"
            mad r0, %ctaid, %ntid, %tid
            shl r1, r0, 2
            ld.g r2, [r1+64]
            fadd r2, r2, 2.0f
            set.lt r3, r2, r0
            brc.z r3, @7, @7
            st.g [r1-4], r2
            atom.add.g r4, [r1+0], 1
            rcp r5, r2
            bar
            exit
        ";
        let p1 = assemble_program(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble_program(&text).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = assemble(".bogus 3\nexit").unwrap_err();
        match e {
            IsaError::Asm(a) => assert!(a.message.contains("unknown directive")),
            other => panic!("unexpected {other}"),
        }
    }
}
