//! Kernels: a program plus launch geometry and resource footprint.

use crate::error::ProgramError;
use crate::program::Program;
use crate::WARP_SIZE;

/// A launchable GPU kernel.
///
/// A kernel couples a validated [`Program`] with its 1-D launch geometry
/// (`num_ctas` CTAs of `threads_per_cta` threads), its per-thread register
/// count, its per-CTA shared-memory footprint and the initial global-memory
/// image. The resource declaration is what the occupancy machinery and the
/// Virtual Thread CTA allocator reason about.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    program: Program,
    num_ctas: u32,
    threads_per_cta: u32,
    regs_per_thread: u16,
    smem_bytes_per_cta: u32,
    global_mem: MemImage,
}

impl Kernel {
    /// Creates a kernel, validating the program against the declared
    /// resources and the geometry for basic sanity.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the program fails
    /// [`Program::validate`], or [`ProgramError::Empty`] if the geometry is
    /// degenerate (zero CTAs or zero threads).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        program: Program,
        num_ctas: u32,
        threads_per_cta: u32,
        regs_per_thread: u16,
        smem_bytes_per_cta: u32,
        global_mem: MemImage,
    ) -> Result<Kernel, ProgramError> {
        if num_ctas == 0 || threads_per_cta == 0 {
            return Err(ProgramError::Empty);
        }
        program.validate(regs_per_thread, smem_bytes_per_cta)?;
        Ok(Kernel {
            name: name.into(),
            program,
            num_ctas,
            threads_per_cta,
            regs_per_thread: regs_per_thread.max(1),
            smem_bytes_per_cta,
            global_mem,
        })
    }

    /// Kernel name (used in reports and tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// CTAs in the grid.
    pub fn num_ctas(&self) -> u32 {
        self.num_ctas
    }

    /// Threads per CTA (not necessarily a multiple of the warp size; the
    /// last warp runs partially populated).
    pub fn threads_per_cta(&self) -> u32 {
        self.threads_per_cta
    }

    /// Architectural registers per thread.
    pub fn regs_per_thread(&self) -> u16 {
        self.regs_per_thread
    }

    /// Shared-memory bytes per CTA.
    pub fn smem_bytes_per_cta(&self) -> u32 {
        self.smem_bytes_per_cta
    }

    /// The initial global-memory image.
    pub fn global_mem(&self) -> &MemImage {
        &self.global_mem
    }

    /// Warps per CTA (threads rounded up to whole warps).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta.div_ceil(WARP_SIZE)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.num_ctas) * u64::from(self.threads_per_cta)
    }

    /// Register-file bytes one CTA occupies (32-bit registers).
    pub fn reg_bytes_per_cta(&self) -> u32 {
        // Register files allocate per warp in practice; round threads up
        // to whole warps like real allocators do.
        self.warps_per_cta() * WARP_SIZE * u32::from(self.regs_per_thread) * 4
    }

    /// Returns a copy with a different grid size, reusing program,
    /// resources and memory image. Used by sweep harnesses.
    ///
    /// Growing the grid beyond what the kernel's buffers were sized for
    /// makes the extra threads address out-of-range memory, which traps at
    /// run time (`GlobalOutOfRange`). Shrink freely; grow only for kernels
    /// that wrap their indices (the suite's L2-resident-table kernels do).
    pub fn with_num_ctas(&self, num_ctas: u32) -> Kernel {
        let mut k = self.clone();
        k.num_ctas = num_ctas.max(1);
        k
    }

    /// Returns a copy with a different initial global-memory image —
    /// typically the output image of a previous launch, for chaining
    /// kernels of an iterative application.
    pub fn with_global_mem(&self, image: MemImage) -> Kernel {
        let mut k = self.clone();
        k.global_mem = image;
        k
    }
}

/// A word-addressable global-memory image.
///
/// Addresses are byte addresses; all accesses are 4-byte aligned words.
/// The image doubles as the initial kernel input and (after a run) the
/// functional output that tests compare against the reference interpreter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemImage {
    words: Vec<u32>,
}

impl MemImage {
    /// An image of `words` zeroed 32-bit words.
    pub fn zeroed(words: usize) -> MemImage {
        MemImage {
            words: vec![0; words],
        }
    }

    /// Wraps an existing word vector.
    pub fn from_words(words: Vec<u32>) -> MemImage {
        MemImage { words }
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Size in words.
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Reads the word at byte address `addr`, or `None` if out of range or
    /// unaligned.
    pub fn load(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        self.words.get((addr / 4) as usize).copied()
    }

    /// Reads `n` consecutive words starting at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `addr` is unaligned.
    pub fn load_words(&self, addr: u32, n: usize) -> &[u32] {
        assert_eq!(addr % 4, 0, "unaligned load_words at {addr:#x}");
        let start = (addr / 4) as usize;
        &self.words[start..start + n]
    }

    /// Writes the word at byte address `addr`. Returns `false` (and leaves
    /// the image unchanged) if out of range or unaligned.
    pub fn store(&mut self, addr: u32, value: u32) -> bool {
        if !addr.is_multiple_of(4) {
            return false;
        }
        match self.words.get_mut((addr / 4) as usize) {
            Some(w) => {
                *w = value;
                true
            }
            None => false,
        }
    }

    /// Copies `values` into the image starting at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `addr` is unaligned.
    pub fn store_words(&mut self, addr: u32, values: &[u32]) {
        assert_eq!(addr % 4, 0, "unaligned store_words at {addr:#x}");
        let start = (addr / 4) as usize;
        self.words[start..start + values.len()].copy_from_slice(values);
    }

    /// The raw word slice.
    pub fn as_words(&self) -> &[u32] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn tiny_program() -> Program {
        Program::new(vec![Instr::Exit])
    }

    #[test]
    fn kernel_geometry_math() {
        let k = Kernel::new("k", tiny_program(), 4, 96, 16, 1024, MemImage::zeroed(8)).unwrap();
        assert_eq!(k.warps_per_cta(), 3);
        assert_eq!(k.total_threads(), 384);
        assert_eq!(k.reg_bytes_per_cta(), 3 * 32 * 16 * 4);
        assert_eq!(k.with_num_ctas(9).num_ctas(), 9);
    }

    #[test]
    fn kernel_rejects_degenerate_geometry() {
        assert!(Kernel::new("k", tiny_program(), 0, 32, 8, 0, MemImage::default()).is_err());
        assert!(Kernel::new("k", tiny_program(), 1, 0, 8, 0, MemImage::default()).is_err());
    }

    #[test]
    fn with_global_mem_replaces_image() {
        let k = Kernel::new("k", tiny_program(), 1, 32, 4, 0, MemImage::zeroed(4)).unwrap();
        let k2 = k.with_global_mem(MemImage::from_words(vec![7, 8]));
        assert_eq!(k2.global_mem().load(4), Some(8));
        assert_eq!(k.global_mem().load(0), Some(0), "original untouched");
    }

    #[test]
    fn partial_warp_rounds_up() {
        let k = Kernel::new("k", tiny_program(), 1, 33, 8, 0, MemImage::default()).unwrap();
        assert_eq!(k.warps_per_cta(), 2);
    }

    #[test]
    fn mem_image_load_store() {
        let mut m = MemImage::zeroed(4);
        assert_eq!(m.byte_len(), 16);
        assert!(m.store(8, 42));
        assert_eq!(m.load(8), Some(42));
        assert_eq!(m.load(6), None, "unaligned");
        assert_eq!(m.load(16), None, "out of range");
        assert!(!m.store(3, 1));
        assert!(!m.store(100, 1));
        m.store_words(0, &[1, 2]);
        assert_eq!(m.load_words(0, 3), &[1, 2, 42]);
    }
}
