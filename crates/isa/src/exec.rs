//! Per-lane functional semantics.
//!
//! Both the timing simulator and the reference interpreter call into this
//! module so a kernel computes the same values on either path; the timing
//! model only decides *when* those values become visible.

use crate::op::{AluOp, AtomOp, Operand, SfuOp, Sreg};

/// The grid position of one thread, used to resolve special registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Thread index within the CTA.
    pub tid: u32,
    /// CTA index within the grid.
    pub ctaid: u32,
    /// Threads per CTA.
    pub ntid: u32,
    /// CTAs in the grid.
    pub ncta: u32,
}

impl ThreadCtx {
    /// Lane index within the warp.
    pub fn lane(&self) -> u32 {
        self.tid % crate::WARP_SIZE
    }

    /// Warp index within the CTA.
    pub fn warp_id(&self) -> u32 {
        self.tid / crate::WARP_SIZE
    }

    /// Globally unique linear thread id.
    pub fn global_tid(&self) -> u32 {
        self.ctaid * self.ntid + self.tid
    }
}

/// Resolves an operand to a value against a register frame and thread
/// context.
///
/// # Panics
///
/// Panics if a register index exceeds the frame; validated programs cannot
/// trigger this.
pub fn resolve(op: Operand, regs: &[u32], ctx: &ThreadCtx) -> u32 {
    match op {
        Operand::Reg(r) => regs[r.0 as usize],
        Operand::Imm(v) => v,
        Operand::Sreg(s) => match s {
            Sreg::Tid => ctx.tid,
            Sreg::CtaId => ctx.ctaid,
            Sreg::NTid => ctx.ntid,
            Sreg::NCta => ctx.ncta,
            Sreg::Lane => ctx.lane(),
            Sreg::WarpId => ctx.warp_id(),
        },
    }
}

fn f(v: u32) -> f32 {
    f32::from_bits(v)
}

fn bits(v: f32) -> u32 {
    v.to_bits()
}

fn flag(b: bool) -> u32 {
    u32::from(b)
}

/// Evaluates a binary ALU operation.
pub fn eval_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Mov => a,
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::MulHi => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        // PTX semantics: unsigned div/rem by zero produce all-ones /
        // the dividend rather than trapping.
        AluOp::Div => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => a.checked_rem(b).unwrap_or(a),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a << (b & 31),
        AluOp::Shr => a >> (b & 31),
        AluOp::SetLt => flag(a < b),
        AluOp::SetLe => flag(a <= b),
        AluOp::SetEq => flag(a == b),
        AluOp::SetNe => flag(a != b),
        AluOp::SetGt => flag(a > b),
        AluOp::SetGe => flag(a >= b),
        AluOp::SetLtS => flag((a as i32) < (b as i32)),
        AluOp::SetGeS => flag((a as i32) >= (b as i32)),
        AluOp::FAdd => bits(f(a) + f(b)),
        AluOp::FSub => bits(f(a) - f(b)),
        AluOp::FMul => bits(f(a) * f(b)),
        AluOp::FMin => bits(f(a).min(f(b))),
        AluOp::FMax => bits(f(a).max(f(b))),
        AluOp::FSetLt => flag(f(a) < f(b)),
        AluOp::FSetLe => flag(f(a) <= f(b)),
        AluOp::FSetGt => flag(f(a) > f(b)),
        AluOp::U2F => bits(a as f32),
        AluOp::F2U => {
            let v = f(a);
            if v.is_nan() {
                0
            } else {
                v.clamp(0.0, u32::MAX as f32) as u32
            }
        }
    }
}

/// Evaluates an integer multiply-add `a * b + c`.
pub fn eval_mad(a: u32, b: u32, c: u32) -> u32 {
    a.wrapping_mul(b).wrapping_add(c)
}

/// Evaluates a float fused multiply-add `a * b + c`.
pub fn eval_ffma(a: u32, b: u32, c: u32) -> u32 {
    bits(f(a).mul_add(f(b), f(c)))
}

/// Evaluates a special-function (SFU) operation.
pub fn eval_sfu(op: SfuOp, a: u32) -> u32 {
    let x = f(a);
    let r = match op {
        SfuOp::Rcp => 1.0 / x,
        SfuOp::Sqrt => x.sqrt(),
        SfuOp::Rsqrt => 1.0 / x.sqrt(),
        SfuOp::Exp2 => x.exp2(),
        SfuOp::Log2 => x.log2(),
        SfuOp::Sin => x.sin(),
    };
    bits(r)
}

/// Applies an atomic read-modify-write, returning the new memory value.
/// The *old* value is what the instruction's destination receives.
pub fn eval_atom(op: AtomOp, old: u32, val: u32) -> u32 {
    match op {
        AtomOp::Add => old.wrapping_add(val),
        AtomOp::Max => old.max(val),
        AtomOp::Min => old.min(val),
        AtomOp::Exch => val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Reg;

    #[test]
    fn thread_ctx_positions() {
        let c = ThreadCtx {
            tid: 70,
            ctaid: 3,
            ntid: 128,
            ncta: 8,
        };
        assert_eq!(c.lane(), 6);
        assert_eq!(c.warp_id(), 2);
        assert_eq!(c.global_tid(), 3 * 128 + 70);
    }

    #[test]
    fn resolve_all_operand_kinds() {
        let ctx = ThreadCtx {
            tid: 5,
            ctaid: 2,
            ntid: 64,
            ncta: 4,
        };
        let regs = [11, 22, 33];
        assert_eq!(resolve(Operand::Reg(Reg(1)), &regs, &ctx), 22);
        assert_eq!(resolve(Operand::Imm(9), &regs, &ctx), 9);
        assert_eq!(resolve(Operand::Sreg(Sreg::Tid), &regs, &ctx), 5);
        assert_eq!(resolve(Operand::Sreg(Sreg::CtaId), &regs, &ctx), 2);
        assert_eq!(resolve(Operand::Sreg(Sreg::NTid), &regs, &ctx), 64);
        assert_eq!(resolve(Operand::Sreg(Sreg::NCta), &regs, &ctx), 4);
        assert_eq!(resolve(Operand::Sreg(Sreg::Lane), &regs, &ctx), 5);
        assert_eq!(resolve(Operand::Sreg(Sreg::WarpId), &regs, &ctx), 0);
    }

    #[test]
    fn integer_alu_semantics() {
        assert_eq!(eval_alu(AluOp::Add, u32::MAX, 2), 1, "wrapping add");
        assert_eq!(eval_alu(AluOp::Sub, 1, 3), u32::MAX - 1);
        assert_eq!(
            eval_alu(AluOp::Mul, 1 << 20, 1 << 13),
            0,
            "low 32 bits of 2^33"
        );
        assert_eq!(eval_alu(AluOp::MulHi, 1 << 20, 1 << 13), 2);
        assert_eq!(eval_alu(AluOp::Div, 7, 2), 3);
        assert_eq!(eval_alu(AluOp::Div, 7, 0), u32::MAX, "PTX div by zero");
        assert_eq!(eval_alu(AluOp::Rem, 7, 0), 7, "PTX rem by zero");
        assert_eq!(eval_alu(AluOp::Shl, 1, 35), 8, "shift masked");
        assert_eq!(eval_alu(AluOp::SetLtS, u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(eval_alu(AluOp::SetLt, u32::MAX, 0), 0, "unsigned");
    }

    #[test]
    fn float_alu_semantics() {
        let one_half = 0.5f32.to_bits();
        let two = 2.0f32.to_bits();
        assert_eq!(f32::from_bits(eval_alu(AluOp::FAdd, one_half, two)), 2.5);
        assert_eq!(f32::from_bits(eval_alu(AluOp::FMul, one_half, two)), 1.0);
        assert_eq!(eval_alu(AluOp::FSetLt, one_half, two), 1);
        assert_eq!(f32::from_bits(eval_alu(AluOp::U2F, 3, 0)), 3.0);
        assert_eq!(eval_alu(AluOp::F2U, 2.9f32.to_bits(), 0), 2);
        assert_eq!(eval_alu(AluOp::F2U, f32::NAN.to_bits(), 0), 0);
    }

    #[test]
    fn mad_and_ffma() {
        assert_eq!(eval_mad(3, 4, 5), 17);
        let r = eval_ffma(2.0f32.to_bits(), 3.0f32.to_bits(), 1.0f32.to_bits());
        assert_eq!(f32::from_bits(r), 7.0);
    }

    #[test]
    fn sfu_semantics() {
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Rcp, 4.0f32.to_bits())), 0.25);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Sqrt, 9.0f32.to_bits())), 3.0);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Exp2, 3.0f32.to_bits())), 8.0);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Log2, 8.0f32.to_bits())), 3.0);
    }

    #[test]
    fn atom_semantics() {
        assert_eq!(eval_atom(AtomOp::Add, 10, 5), 15);
        assert_eq!(eval_atom(AtomOp::Max, 10, 5), 10);
        assert_eq!(eval_atom(AtomOp::Min, 10, 5), 5);
        assert_eq!(eval_atom(AtomOp::Exch, 10, 5), 5);
    }
}
