//! `vtasm` — assemble, disassemble, validate and functionally run kernels
//! written in the textual mini-ISA.
//!
//! ```text
//! vtasm check  kernel.vt          # assemble + validate, print resources
//! vtasm dis    kernel.vt          # round-trip through the disassembler
//! vtasm run    kernel.vt [words]  # run on the reference interpreter and
//!                                 # dump the first `words` of memory
//! ```

use std::process::ExitCode;
use vt_isa::asm::{assemble, disassemble};
use vt_isa::interp::Interpreter;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => {
            eprintln!("usage: vtasm <check|dis|run> <file.vt> [words-to-dump]");
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vtasm: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kernel = match assemble(&src) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("vtasm: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "check" => {
            println!(
                "{}: OK — {} instructions, {} CTAs x {} threads, {} regs/thread, {} B smem/CTA, \
                 {} B global memory",
                kernel.name(),
                kernel.program().len(),
                kernel.num_ctas(),
                kernel.threads_per_cta(),
                kernel.regs_per_thread(),
                kernel.smem_bytes_per_cta(),
                kernel.global_mem().byte_len(),
            );
            let mix = kernel.program().mix();
            println!(
                "mix: {} alu, {} sfu, {} global-mem, {} shared-mem, {} barrier, {} control",
                mix.alu, mix.sfu, mix.global_mem, mix.shared_mem, mix.barrier, mix.control
            );
            ExitCode::SUCCESS
        }
        "dis" => {
            print!("{}", disassemble(kernel.program()));
            ExitCode::SUCCESS
        }
        "run" => {
            let words: usize = args.get(2).and_then(|w| w.parse().ok()).unwrap_or(16);
            let interp = match Interpreter::new(&kernel) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("vtasm: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match interp.run() {
                Ok(result) => {
                    println!(
                        "ran {} warp instructions ({} thread instructions)",
                        result.warp_instrs(),
                        result.thread_instrs()
                    );
                    let n = words.min(result.mem().word_len());
                    for (i, w) in result.mem().as_words()[..n].iter().enumerate() {
                        println!("[{:#06x}] = {w:#010x} ({w})", i * 4);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("vtasm: execution trapped: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("vtasm: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}
