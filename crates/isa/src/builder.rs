//! A typed DSL for constructing kernels with structured control flow.
//!
//! The builder guarantees by construction that every divergent branch
//! carries a correct reconvergence PC, so programs it emits always pass
//! [`crate::program::Program::validate`] and execute correctly on the
//! IPDOM SIMT stack.

use crate::error::IsaError;
use crate::instr::Instr;
use crate::kernel::{Kernel, MemImage};
use crate::op::{AluOp, AtomOp, BranchIf, MemSpace, Operand, Reg, SfuOp, Sreg};
use crate::program::Program;

/// Incrementally builds a [`Kernel`]: allocates registers, shared and
/// global memory, and emits instructions including structured control flow.
///
/// # Example
///
/// ```
/// use vt_isa::builder::KernelBuilder;
/// use vt_isa::op::Operand;
///
/// # fn main() -> Result<(), vt_isa::IsaError> {
/// let mut b = KernelBuilder::new("count-down");
/// let ctr = b.reg();
/// b.mov(ctr, Operand::Imm(10));
/// b.while_(
///     |b| {
///         let c = b.reg();
///         b.set_gt(c, Operand::Reg(ctr), Operand::Imm(0));
///         Operand::Reg(c)
///     },
///     |b| {
///         b.sub(ctr, Operand::Reg(ctr), Operand::Imm(1));
///     },
/// );
/// b.exit();
/// let kernel = b.build(1, 32)?;
/// assert!(kernel.program().len() > 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    next_reg: u16,
    min_regs: u16,
    scratch: Option<Reg>,
    smem_cursor: u32,
    min_smem: u32,
    global_image: Vec<u32>,
}

impl KernelBuilder {
    /// Starts building a kernel named `name`.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            next_reg: 0,
            min_regs: 0,
            scratch: None,
            smem_cursor: 0,
            min_smem: 0,
            global_image: Vec::new(),
        }
    }

    // ----- resource allocation -------------------------------------------

    /// Allocates a fresh per-thread register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Declares a register-footprint floor, modelling kernels whose
    /// compiled register usage exceeds what this mini-ISA program needs
    /// (the capacity-limited workloads of the paper).
    pub fn pad_regs(&mut self, total: u16) {
        self.min_regs = self.min_regs.max(total);
    }

    /// Allocates `words` 32-bit words of shared memory, returning the byte
    /// address of the allocation.
    pub fn alloc_shared(&mut self, words: u32) -> u32 {
        let addr = self.smem_cursor;
        self.smem_cursor += words * 4;
        addr
    }

    /// Declares a shared-memory floor in bytes (capacity-limit modelling,
    /// like [`KernelBuilder::pad_regs`]).
    pub fn pad_smem(&mut self, bytes: u32) {
        self.min_smem = self.min_smem.max(bytes);
    }

    /// Allocates `words` zeroed words of global memory, returning the byte
    /// address of the buffer.
    pub fn alloc_global(&mut self, words: usize) -> u32 {
        let addr = (self.global_image.len() * 4) as u32;
        self.global_image.resize(self.global_image.len() + words, 0);
        addr
    }

    /// Allocates a global buffer initialised with `values`, returning its
    /// byte address.
    pub fn alloc_global_init(&mut self, values: &[u32]) -> u32 {
        let addr = (self.global_image.len() * 4) as u32;
        self.global_image.extend_from_slice(values);
        addr
    }

    /// Allocates a global buffer initialised with float `values`.
    pub fn alloc_global_init_f32(&mut self, values: &[f32]) -> u32 {
        let words: Vec<u32> = values.iter().map(|v| v.to_bits()).collect();
        self.alloc_global_init(&words)
    }

    /// Current program length (the PC the next emitted instruction gets).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    fn scratch_reg(&mut self) -> Reg {
        match self.scratch {
            Some(r) => r,
            None => {
                let r = self.reg();
                self.scratch = Some(r);
                r
            }
        }
    }

    // ----- raw emission ---------------------------------------------------

    /// Emits a raw instruction; prefer the typed helpers below.
    pub fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn alu(&mut self, op: AluOp, dst: Reg, a: Operand, b: Operand) {
        self.emit(Instr::Alu { op, dst, a, b });
    }

    // ----- ALU helpers ----------------------------------------------------

    /// `dst = a`.
    pub fn mov(&mut self, dst: Reg, a: Operand) {
        self.alu(AluOp::Mov, dst, a, Operand::Imm(0));
    }

    /// `dst = a + b` (wrapping).
    pub fn add(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Add, dst, a, b);
    }

    /// `dst = a - b` (wrapping).
    pub fn sub(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Sub, dst, a, b);
    }

    /// `dst = a * b` (low 32 bits).
    pub fn mul(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Mul, dst, a, b);
    }

    /// `dst = a / b` (unsigned).
    pub fn div(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Div, dst, a, b);
    }

    /// `dst = a % b` (unsigned).
    pub fn rem(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Rem, dst, a, b);
    }

    /// `dst = min(a, b)` (unsigned).
    pub fn min_(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Min, dst, a, b);
    }

    /// `dst = max(a, b)` (unsigned).
    pub fn max_(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Max, dst, a, b);
    }

    /// `dst = a & b`.
    pub fn and_(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::And, dst, a, b);
    }

    /// `dst = a | b`.
    pub fn or_(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Or, dst, a, b);
    }

    /// `dst = a ^ b`.
    pub fn xor_(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Xor, dst, a, b);
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Shl, dst, a, b);
    }

    /// `dst = a >> b` (logical).
    pub fn shr(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::Shr, dst, a, b);
    }

    /// `dst = (a < b)` (unsigned).
    pub fn set_lt(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::SetLt, dst, a, b);
    }

    /// `dst = (a <= b)` (unsigned).
    pub fn set_le(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::SetLe, dst, a, b);
    }

    /// `dst = (a == b)`.
    pub fn set_eq(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::SetEq, dst, a, b);
    }

    /// `dst = (a != b)`.
    pub fn set_ne(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::SetNe, dst, a, b);
    }

    /// `dst = (a > b)` (unsigned).
    pub fn set_gt(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::SetGt, dst, a, b);
    }

    /// `dst = (a >= b)` (unsigned).
    pub fn set_ge(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::SetGe, dst, a, b);
    }

    /// `dst = a + b` as floats.
    pub fn fadd(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::FAdd, dst, a, b);
    }

    /// `dst = a - b` as floats.
    pub fn fsub(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::FSub, dst, a, b);
    }

    /// `dst = a * b` as floats.
    pub fn fmul(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::FMul, dst, a, b);
    }

    /// `dst = (a < b)` as floats.
    pub fn fset_lt(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu(AluOp::FSetLt, dst, a, b);
    }

    /// `dst = float(a)` (unsigned to float).
    pub fn u2f(&mut self, dst: Reg, a: Operand) {
        self.alu(AluOp::U2F, dst, a, Operand::Imm(0));
    }

    /// `dst = uint(a)` (float to unsigned, saturating).
    pub fn f2u(&mut self, dst: Reg, a: Operand) {
        self.alu(AluOp::F2U, dst, a, Operand::Imm(0));
    }

    /// `dst = a * b + c` (integer).
    pub fn mad(&mut self, dst: Reg, a: Operand, b: Operand, c: Operand) {
        self.emit(Instr::Mad { dst, a, b, c });
    }

    /// `dst = a * b + c` (float fused).
    pub fn ffma(&mut self, dst: Reg, a: Operand, b: Operand, c: Operand) {
        self.emit(Instr::Ffma { dst, a, b, c });
    }

    /// `dst = op(a)` on the SFU pipeline.
    pub fn sfu(&mut self, op: SfuOp, dst: Reg, a: Operand) {
        self.emit(Instr::Sfu { op, dst, a });
    }

    /// `dst = ctaid * ntid + tid` — the global linear thread id.
    pub fn global_thread_id(&mut self, dst: Reg) {
        self.mad(
            dst,
            Operand::Sreg(Sreg::CtaId),
            Operand::Sreg(Sreg::NTid),
            Operand::Sreg(Sreg::Tid),
        );
    }

    // ----- memory ---------------------------------------------------------

    /// `dst = global[addr + offset]`.
    pub fn ld_global(&mut self, dst: Reg, addr: Operand, offset: i32) {
        self.emit(Instr::Ld {
            space: MemSpace::Global,
            dst,
            addr,
            offset,
        });
    }

    /// `global[addr + offset] = src`.
    pub fn st_global(&mut self, addr: Operand, offset: i32, src: Operand) {
        self.emit(Instr::St {
            space: MemSpace::Global,
            addr,
            offset,
            src,
        });
    }

    /// `dst = shared[addr + offset]`.
    pub fn ld_shared(&mut self, dst: Reg, addr: Operand, offset: i32) {
        self.emit(Instr::Ld {
            space: MemSpace::Shared,
            dst,
            addr,
            offset,
        });
    }

    /// `shared[addr + offset] = src`.
    pub fn st_shared(&mut self, addr: Operand, offset: i32, src: Operand) {
        self.emit(Instr::St {
            space: MemSpace::Shared,
            addr,
            offset,
            src,
        });
    }

    /// Atomic read-modify-write on global memory.
    pub fn atom(&mut self, op: AtomOp, dst: Option<Reg>, addr: Operand, offset: i32, val: Operand) {
        self.emit(Instr::Atom {
            op,
            dst,
            addr,
            offset,
            val,
        });
    }

    /// CTA-wide barrier.
    pub fn bar(&mut self) {
        self.emit(Instr::Bar);
    }

    /// Terminates the thread.
    pub fn exit(&mut self) {
        self.emit(Instr::Exit);
    }

    // ----- structured control flow -----------------------------------------

    /// Runs `body` only for lanes where `pred` is non-zero.
    pub fn if_(&mut self, pred: Operand, body: impl FnOnce(&mut Self)) {
        let br = self.emit(Instr::BraCond {
            pred,
            when: BranchIf::Zero,
            target: usize::MAX,
            reconv: usize::MAX,
        });
        body(self);
        let end = self.here();
        self.patch_brc(br, end, end);
    }

    /// Runs `then_b` for lanes where `pred` is non-zero and `else_b` for
    /// the rest.
    pub fn if_else(
        &mut self,
        pred: Operand,
        then_b: impl FnOnce(&mut Self),
        else_b: impl FnOnce(&mut Self),
    ) {
        let br = self.emit(Instr::BraCond {
            pred,
            when: BranchIf::Zero,
            target: usize::MAX,
            reconv: usize::MAX,
        });
        then_b(self);
        let jump = self.emit(Instr::Bra { target: usize::MAX });
        let else_start = self.here();
        else_b(self);
        let join = self.here();
        self.patch_brc(br, else_start, join);
        if let Instr::Bra { target } = &mut self.instrs[jump] {
            *target = join;
        }
    }

    /// Loops `body` while the operand returned by `cond` is non-zero. The
    /// condition code is emitted once at the loop head and re-executed on
    /// every iteration via the back edge.
    pub fn while_(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Operand,
        body: impl FnOnce(&mut Self),
    ) {
        let top = self.here();
        let pred = cond(self);
        let br = self.emit(Instr::BraCond {
            pred,
            when: BranchIf::Zero,
            target: usize::MAX,
            reconv: usize::MAX,
        });
        body(self);
        self.emit(Instr::Bra { target: top });
        let exit = self.here();
        self.patch_brc(br, exit, exit);
    }

    /// Counted loop: `for ctr in (start..end).step_by(step)`, where `end`
    /// is evaluated each iteration.
    pub fn for_range(
        &mut self,
        ctr: Reg,
        start: Operand,
        end: Operand,
        step: u32,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        self.mov(ctr, start);
        let scratch = self.scratch_reg();
        let top = self.here();
        self.set_lt(scratch, Operand::Reg(ctr), end);
        let br = self.emit(Instr::BraCond {
            pred: Operand::Reg(scratch),
            when: BranchIf::Zero,
            target: usize::MAX,
            reconv: usize::MAX,
        });
        body(self, ctr);
        self.add(ctr, Operand::Reg(ctr), Operand::Imm(step));
        self.emit(Instr::Bra { target: top });
        let exit = self.here();
        self.patch_brc(br, exit, exit);
    }

    fn patch_brc(&mut self, at: usize, target: usize, reconv: usize) {
        match &mut self.instrs[at] {
            Instr::BraCond {
                target: t,
                reconv: r,
                ..
            } => {
                *t = target;
                *r = reconv;
            }
            other => unreachable!("patching non-branch {other:?}"),
        }
    }

    // ----- finalisation -----------------------------------------------------

    /// Finishes the kernel with the given launch geometry.
    ///
    /// Appends a trailing `exit` if the program does not already end in a
    /// control transfer, then validates the program against the allocated
    /// resources.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Program`] if validation fails (only possible via
    /// raw [`KernelBuilder::emit`] usage).
    pub fn build(mut self, num_ctas: u32, threads_per_cta: u32) -> Result<Kernel, IsaError> {
        // Always terminate with `exit` unless one is already there: control
        // constructs that end the program patch their branches to point one
        // past the last emitted instruction, and this trailing `exit` is
        // that landing pad.
        if !matches!(self.instrs.last(), Some(Instr::Exit)) {
            self.instrs.push(Instr::Exit);
        }
        let regs = self.next_reg.max(self.min_regs).max(1);
        let smem = self.smem_cursor.max(self.min_smem);
        let kernel = Kernel::new(
            self.name,
            Program::new(self.instrs),
            num_ctas,
            threads_per_cta,
            regs,
            smem,
            MemImage::from_words(self.global_image),
        )?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_build() {
        let mut b = KernelBuilder::new("t");
        let r = b.reg();
        b.mov(r, Operand::Imm(1));
        b.exit();
        let k = b.build(2, 64).unwrap();
        assert_eq!(k.program().len(), 2);
        assert_eq!(k.regs_per_thread(), 1);
        assert_eq!(k.num_ctas(), 2);
    }

    #[test]
    fn auto_appends_exit() {
        let mut b = KernelBuilder::new("t");
        let r = b.reg();
        b.mov(r, Operand::Imm(1));
        let k = b.build(1, 32).unwrap();
        assert_eq!(*k.program().fetch(1), Instr::Exit);
    }

    #[test]
    fn resource_allocation() {
        let mut b = KernelBuilder::new("t");
        let s0 = b.alloc_shared(16);
        let s1 = b.alloc_shared(8);
        assert_eq!(s0, 0);
        assert_eq!(s1, 64);
        let g0 = b.alloc_global(4);
        let g1 = b.alloc_global_init(&[7, 8]);
        assert_eq!(g0, 0);
        assert_eq!(g1, 16);
        b.pad_regs(40);
        b.pad_smem(4096);
        b.exit();
        let k = b.build(1, 32).unwrap();
        assert_eq!(k.regs_per_thread(), 40);
        assert_eq!(k.smem_bytes_per_cta(), 4096);
        assert_eq!(k.global_mem().load(16), Some(7));
        assert_eq!(k.global_mem().load(20), Some(8));
    }

    #[test]
    fn if_patches_structured_branch() {
        let mut b = KernelBuilder::new("t");
        let p = b.reg();
        let x = b.reg();
        b.mov(p, Operand::Sreg(Sreg::Lane));
        b.if_(Operand::Reg(p), |b| {
            b.add(x, Operand::Reg(x), Operand::Imm(1));
            b.add(x, Operand::Reg(x), Operand::Imm(2));
        });
        b.exit();
        let k = b.build(1, 32).unwrap();
        match *k.program().fetch(1) {
            Instr::BraCond {
                when: BranchIf::Zero,
                target,
                reconv,
                ..
            } => {
                assert_eq!(target, 4);
                assert_eq!(reconv, 4);
            }
            ref other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn if_else_patches_both_edges() {
        let mut b = KernelBuilder::new("t");
        let p = b.reg();
        let x = b.reg();
        b.if_else(
            Operand::Reg(p),
            |b| b.mov(x, Operand::Imm(1)),
            |b| b.mov(x, Operand::Imm(2)),
        );
        b.exit();
        let k = b.build(1, 32).unwrap();
        // 0: brc.z -> else(3), reconv 4; 1: then; 2: bra 4; 3: else; 4: exit
        match *k.program().fetch(0) {
            Instr::BraCond { target, reconv, .. } => {
                assert_eq!(target, 3);
                assert_eq!(reconv, 4);
            }
            ref other => panic!("expected branch, got {other}"),
        }
        assert_eq!(*k.program().fetch(2), Instr::Bra { target: 4 });
    }

    #[test]
    fn while_and_for_validate() {
        let mut b = KernelBuilder::new("t");
        let i = b.reg();
        let acc = b.reg();
        b.for_range(i, Operand::Imm(0), Operand::Imm(10), 1, |b, i| {
            b.add(acc, Operand::Reg(acc), Operand::Reg(i));
        });
        b.while_(
            |b| {
                let c = b.reg();
                b.set_lt(c, Operand::Reg(acc), Operand::Imm(100));
                Operand::Reg(c)
            },
            |b| {
                b.add(acc, Operand::Reg(acc), Operand::Imm(7));
            },
        );
        b.exit();
        // build() runs Program::validate, which checks structuredness.
        let k = b.build(1, 32).unwrap();
        assert!(k.program().len() >= 9);
    }

    #[test]
    fn nested_control_flow_validates() {
        let mut b = KernelBuilder::new("t");
        let i = b.reg();
        let p = b.reg();
        let x = b.reg();
        b.for_range(i, Operand::Imm(0), Operand::Imm(4), 1, |b, i| {
            b.and_(p, Operand::Reg(i), Operand::Imm(1));
            b.if_else(
                Operand::Reg(p),
                |b| {
                    b.if_(Operand::Reg(x), |b| {
                        b.add(x, Operand::Reg(x), Operand::Imm(1))
                    });
                },
                |b| b.mov(x, Operand::Imm(0)),
            );
        });
        assert!(b.build(1, 64).is_ok());
    }

    #[test]
    fn global_thread_id_is_mad() {
        let mut b = KernelBuilder::new("t");
        let g = b.reg();
        b.global_thread_id(g);
        b.exit();
        let k = b.build(1, 32).unwrap();
        assert!(matches!(*k.program().fetch(0), Instr::Mad { .. }));
    }
}
