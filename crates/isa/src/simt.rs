//! The SIMT reconvergence stack.
//!
//! Divergent branches are handled with the classic immediate-post-dominator
//! (IPDOM) stack: on divergence the executing entry is retargeted to the
//! reconvergence PC and one entry per path is pushed; a path entry pops when
//! its PC reaches its reconvergence PC, and when the last path pops the
//! original entry resumes with the original (merged) mask.
//!
//! This structure is exactly the "scheduling limit" state the Virtual
//! Thread paper virtualizes: each hardware warp slot owns one of these
//! stacks plus a PC, and VT swaps them to a small context buffer.

/// One entry of the reconvergence stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimtEntry {
    /// Next PC for the lanes of this entry.
    pub pc: usize,
    /// PC at which this entry pops (reconverges into the entry below);
    /// `None` for the top-level entry, which only drains via `exit`.
    pub rpc: Option<usize>,
    /// Lanes executing this entry.
    pub mask: u32,
}

/// A per-warp SIMT reconvergence stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimtStack {
    entries: Vec<SimtEntry>,
    max_depth: usize,
}

impl SimtStack {
    /// A stack with a single top-level entry at PC 0 covering
    /// `initial_mask`.
    pub fn new(initial_mask: u32) -> SimtStack {
        let entries = if initial_mask == 0 {
            Vec::new()
        } else {
            vec![SimtEntry {
                pc: 0,
                rpc: None,
                mask: initial_mask,
            }]
        };
        SimtStack {
            max_depth: entries.len(),
            entries,
        }
    }

    /// Rebuilds a stack from previously observed state (checkpoint
    /// restore): `entries` bottom to top as returned by
    /// [`SimtStack::entries`], and the historical [`SimtStack::max_depth`].
    /// The recorded maximum is kept at least as deep as `entries`.
    pub fn from_saved(entries: Vec<SimtEntry>, max_depth: usize) -> SimtStack {
        SimtStack {
            max_depth: max_depth.max(entries.len()),
            entries,
        }
    }

    /// Whether every lane has exited.
    pub fn is_done(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current PC (top of stack).
    ///
    /// # Panics
    ///
    /// Panics if the warp is done; callers check [`SimtStack::is_done`].
    pub fn pc(&self) -> usize {
        self.top().pc
    }

    /// Current active mask (top of stack).
    pub fn active_mask(&self) -> u32 {
        self.entries.last().map_or(0, |e| e.mask)
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Deepest the stack has ever been; feeds the hardware-overhead model.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// The entries, bottom to top.
    pub fn entries(&self) -> &[SimtEntry] {
        &self.entries
    }

    fn top(&self) -> &SimtEntry {
        self.entries.last().expect("SIMT stack is empty")
    }

    fn top_mut(&mut self) -> &mut SimtEntry {
        self.entries.last_mut().expect("SIMT stack is empty")
    }

    /// Pops entries whose PC has reached their reconvergence PC.
    fn reconverge(&mut self) {
        while let Some(e) = self.entries.last() {
            if e.rpc == Some(e.pc) {
                self.entries.pop();
            } else {
                break;
            }
        }
    }

    /// Moves past a non-control instruction.
    pub fn advance(&mut self) {
        self.top_mut().pc += 1;
        self.reconverge();
    }

    /// Uniform jump: all active lanes move to `target`.
    pub fn jump(&mut self, target: usize) {
        self.top_mut().pc = target;
        self.reconverge();
    }

    /// Resolves a conditional branch at the current PC.
    ///
    /// `taken_mask` must be a subset of the active mask. Returns `true` if
    /// the warp diverged (both paths non-empty), which the simulator counts.
    pub fn branch(&mut self, taken_mask: u32, target: usize, reconv: usize) -> bool {
        let active = self.active_mask();
        debug_assert_eq!(taken_mask & !active, 0, "taken mask exceeds active mask");
        let fall_mask = active & !taken_mask;
        if taken_mask == 0 {
            self.advance();
            false
        } else if fall_mask == 0 {
            self.jump(target);
            false
        } else {
            let fall_pc = self.top().pc + 1;
            // The current entry becomes the reconvergence point, keeping
            // the merged mask; each path gets its own entry.
            self.top_mut().pc = reconv;
            self.entries.push(SimtEntry {
                pc: fall_pc,
                rpc: Some(reconv),
                mask: fall_mask,
            });
            self.entries.push(SimtEntry {
                pc: target,
                rpc: Some(reconv),
                mask: taken_mask,
            });
            self.max_depth = self.max_depth.max(self.entries.len());
            self.reconverge();
            true
        }
    }

    /// Retires the currently active lanes (an `exit` instruction); they are
    /// removed from every stack entry.
    pub fn exit(&mut self) {
        let m = self.active_mask();
        for e in &mut self.entries {
            e.mask &= !m;
        }
        self.entries.retain(|e| e.mask != 0);
        self.reconverge();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: u32 = u32::MAX;

    #[test]
    fn fresh_stack() {
        let s = SimtStack::new(FULL);
        assert!(!s.is_done());
        assert_eq!(s.pc(), 0);
        assert_eq!(s.active_mask(), FULL);
        assert_eq!(s.depth(), 1);
        assert!(SimtStack::new(0).is_done());
    }

    #[test]
    fn advance_moves_pc() {
        let mut s = SimtStack::new(FULL);
        s.advance();
        s.advance();
        assert_eq!(s.pc(), 2);
    }

    #[test]
    fn uniform_branch_taken_and_not_taken() {
        let mut s = SimtStack::new(FULL);
        assert!(!s.branch(FULL, 10, 10), "all-taken is not divergent");
        assert_eq!(s.pc(), 10);
        assert_eq!(s.depth(), 1);

        let mut s = SimtStack::new(FULL);
        assert!(!s.branch(0, 10, 10), "none-taken is not divergent");
        assert_eq!(s.pc(), 1);
    }

    #[test]
    fn if_else_diverges_and_reconverges() {
        // pc0: brc -> taken lanes to 5, fall to 1, reconv at 9.
        let mut s = SimtStack::new(FULL);
        let taken = 0x0000_ffff;
        assert!(s.branch(taken, 5, 9));
        // Taken path executes first.
        assert_eq!(s.pc(), 5);
        assert_eq!(s.active_mask(), taken);
        assert_eq!(s.depth(), 3);
        // Taken path runs 5..9 then pops.
        for _ in 5..9 {
            s.advance();
        }
        // Now the fall-through path is on top.
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active_mask(), !taken);
        // Fall path jumps over the else block: 1..4 then uniform jump to 9.
        for _ in 1..4 {
            s.advance();
        }
        s.jump(9);
        // Both popped; merged entry at reconvergence with full mask.
        assert_eq!(s.depth(), 1);
        assert_eq!(s.pc(), 9);
        assert_eq!(s.active_mask(), FULL);
        assert_eq!(s.max_depth(), 3);
    }

    #[test]
    fn loop_exit_branch_parks_lanes_at_reconvergence() {
        // while-loop shape: pc0 = brc.z cond -> exit @4 reconv @4;
        // body 1..3; pc3 = bra 0.
        let mut s = SimtStack::new(0b1111);
        // Iteration 1: lane 0 exits the loop, others stay.
        assert!(s.branch(0b0001, 4, 4));
        // Taken entry popped immediately (pc == rpc); body path on top.
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active_mask(), 0b1110);
        s.advance(); // 2
        s.advance(); // 3
        s.jump(0); // back edge
        assert_eq!(s.pc(), 0);
        // Iteration 2: remaining lanes all exit.
        assert!(!s.branch(0b1110, 4, 4));
        // Body entry jumped to its rpc and popped; merged at 4, full mask.
        assert_eq!(s.depth(), 1);
        assert_eq!(s.pc(), 4);
        assert_eq!(s.active_mask(), 0b1111);
    }

    #[test]
    fn nested_divergence() {
        let mut s = SimtStack::new(0b1111);
        // Outer: lanes 0-1 taken to 10, reconv 20.
        s.branch(0b0011, 10, 20);
        assert_eq!(s.pc(), 10);
        // Inner (on taken path): lane 0 to 15, reconv 18.
        s.branch(0b0001, 15, 18);
        assert_eq!(s.pc(), 15);
        assert_eq!(s.depth(), 5);
        assert_eq!(s.max_depth(), 5);
        // Lane 0 runs 15..18, pops to inner fall path.
        for _ in 15..18 {
            s.advance();
        }
        assert_eq!(s.pc(), 11);
        assert_eq!(s.active_mask(), 0b0010);
        // Inner fall runs 11..18, pops to inner reconv entry (mask 0b0011).
        for _ in 11..18 {
            s.advance();
        }
        assert_eq!(s.pc(), 18);
        assert_eq!(s.active_mask(), 0b0011);
        // Outer taken continues 18..20, pops to outer fall.
        s.advance();
        s.advance();
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active_mask(), 0b1100);
    }

    #[test]
    fn exit_removes_lanes_everywhere() {
        let mut s = SimtStack::new(0b1111);
        s.branch(0b0011, 10, 20);
        // Taken lanes exit inside the branch.
        s.exit();
        // Fall path on top.
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active_mask(), 0b1100);
        // Fall path reaches reconvergence; merged entry has only live lanes.
        s.jump(20);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.active_mask(), 0b1100);
        s.exit();
        assert!(s.is_done());
    }

    #[test]
    fn exit_all_lanes_immediately() {
        let mut s = SimtStack::new(FULL);
        s.exit();
        assert!(s.is_done());
        assert_eq!(s.active_mask(), 0);
    }
}
