//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace builds in fully offline environments, so workload data
//! generation and randomized tests use this xorshift64* generator instead of
//! an external `rand` crate. The stream is stable across platforms and
//! releases: the same seed always produces the same kernel inputs, which is
//! exactly what reproducible experiments need.
#![forbid(unsafe_code)]

/// Deterministic xorshift64* generator.
///
/// Passes the usual empirical smoke tests (equidistribution of low/high bits
/// after the `*` finalizer) and is more than good enough for synthetic
/// workload data. Not cryptographically secure — never use it for secrets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed. Seed 0 is remapped internally so the
    /// all-zero fixed point is unreachable.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble of the seed so nearby seeds give unrelated
        // streams (plain xorshift is sensitive to low-entropy seeds).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Prng {
            state: if z == 0 { 0x853C_49E6_748F_EA9B } else { z },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 random bits (the high half of the 64-bit output, which has
    /// the better statistical quality).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u32>) -> u32 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = u64::from(range.end - range.start);
        // Multiply-shift mapping; the modulo bias over a 64-bit draw is
        // below 2^-32 for any span we use, so no rejection loop is needed.
        range.start + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u32
    }

    /// Uniform integer in `[range.start, range.end)` over `usize`.
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range_usize: empty range");
        let span = (range.end - range.start) as u128;
        range.start + ((u128::from(self.next_u64()).wrapping_mul(span)) >> 64) as usize
    }

    /// Uniform float in `[0, 1)` with 24 random mantissa bits.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform float in `[range.start, range.end)`.
    pub fn gen_range_f32(&mut self, range: std::ops::Range<f32>) -> f32 {
        range.start + (range.end - range.start) * self.gen_f32()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        f64::from(self.next_u32()) < p * f64::from(u32::MAX)
    }

    /// Chooses one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range_usize(0..items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range_usize(0..i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Prng::new(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut r = Prng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn gen_f32_unit_interval() {
        let mut r = Prng::new(9);
        for _ in 0..1000 {
            let v = r.gen_f32();
            assert!((0.0..1.0).contains(&v));
        }
        let v = r.gen_range_f32(-2.0..2.0);
        assert!((-2.0..2.0).contains(&v));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Prng::new(11);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::new(13);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "seed 13 permutes");
    }

    #[test]
    fn rough_uniformity() {
        let mut r = Prng::new(99);
        let mut buckets = [0u32; 16];
        for _ in 0..16000 {
            buckets[(r.next_u32() >> 28) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b} badly skewed");
        }
    }
}
