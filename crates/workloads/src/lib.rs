//! # vt-workloads — the benchmark suite
//!
//! Fourteen synthetic kernels written in the `vt-isa` mini-ISA, each
//! mirroring the resource footprint and memory behaviour of a benchmark
//! class from the Rodinia/Parboil suites the Virtual Thread paper
//! evaluates (we do not have the authors' CUDA binaries or GPGPU-Sim, so
//! the suite is rebuilt from each benchmark's published characteristics:
//! CTA size, register pressure, shared-memory usage, access pattern and
//! synchronisation structure).
//!
//! The suite deliberately spans the paper's two populations:
//!
//! * **scheduling-limited** kernels (small CTAs, modest registers, little
//!   shared memory) whose baseline occupancy is capped by CTA/warp slots —
//!   the kernels Virtual Thread accelerates, and
//! * **capacity-limited** kernels (register- or shared-memory-hungry)
//!   where VT has no headroom and must at least not hurt.
//!
//! Use [`suite()`](suite::suite) for the full list, [`Workload`] for per-kernel metadata,
//! and [`generator::SyntheticParams`] to build parameterised kernels for
//! sensitivity sweeps.
#![forbid(unsafe_code)]

pub mod generator;
pub mod kernels;
pub mod suite;
pub mod zoo;

pub use generator::{AccessPattern, SyntheticParams};
pub use suite::{full_suite, suite, LimiterClass, Scale, Workload};
