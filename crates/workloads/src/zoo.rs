//! The workload zoo: parameterised scenario families beyond the core
//! Rodinia/Parboil-mirroring suite.
//!
//! Each family is a knob struct (like [`crate::generator::SyntheticParams`])
//! whose `build()` produces a `vt-isa` kernel; [`crate::suite::zoo`]
//! instantiates one canonical preset per family so the scenarios flow
//! into the golden/differential/torture suites, the CPI oracle and
//! `vtbench` as named [`crate::Workload`]s. The six families stress the
//! axes the core suite covers only incidentally:
//!
//! * **divtree** — data-dependent nested branching (SIMT-stack depth),
//! * **hotbins** — atomic contention on a handful of hot histogram bins,
//! * **relay** — producer→consumer warp pipelines over barrier chains,
//! * **frontier** — sparse graph frontier expansion with variable degree,
//! * **regstairs** — register-pressure staircases (capacity-limited),
//! * **bankstorm** — shared-memory bank-conflict sweeps (capacity-limited).
//!
//! The scheduling-limited families use small CTAs with latency-bound
//! memory behaviour (Virtual Thread's target population); the two
//! capacity-limited families are tuned so registers or shared memory bind
//! first on the default Fermi-class limits, where VT must not hurt.

use crate::kernels::util::{rand_indices, rand_words, rng};
use vt_isa::op::{AtomOp, Operand, Sreg};
use vt_isa::{Kernel, KernelBuilder};

/// Divergence-heavy branching: every thread walks a `depth`-level tree of
/// data-dependent branches, each arm performing its own dependent global
/// load, so warps fork on nearly every level.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergentTreeParams {
    /// Kernel name.
    pub name: String,
    /// CTAs in the grid.
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Nesting levels of data-dependent branching per iteration.
    pub depth: u32,
    /// Outer iterations (each re-seeds the branch data).
    pub iters: u32,
    /// Declared register footprint per thread.
    pub regs_per_thread: u16,
}

impl Default for DivergentTreeParams {
    fn default() -> Self {
        DivergentTreeParams {
            name: "divtree".to_string(),
            ctas: 60,
            threads_per_cta: 64,
            depth: 3,
            iters: 2,
            regs_per_thread: 14,
        }
    }
}

impl DivergentTreeParams {
    /// Builds the kernel.
    pub fn build(&self) -> Kernel {
        let n = self.ctas * self.threads_per_cta;
        let table = 4096u32; // power of two so `& (table-1)` wraps
        let mut r = rng(0xd1f7_0001);
        let mut b = KernelBuilder::new(self.name.clone());
        let data = b.alloc_global_init(&rand_words(&mut r, table as usize));
        let out = b.alloc_global(n as usize);

        let gid = b.reg();
        let v = b.reg();
        let acc = b.reg();
        let p = b.reg();
        let tmp = b.reg();
        let i = b.reg();
        b.global_thread_id(gid);
        b.and_(tmp, Operand::Reg(gid), Operand::Imm(table - 1));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(tmp), data as i32);
        b.mov(acc, Operand::Imm(1));
        b.for_range(
            i,
            Operand::Imm(0),
            Operand::Imm(self.iters.max(1)),
            1,
            |b, _| {
                for d in 0..self.depth.max(1) {
                    // Branch on bit `d` of the loaded value: roughly half
                    // of every warp takes each arm, and both arms chase a
                    // dependent load before reconverging.
                    b.shr(p, Operand::Reg(v), Operand::Imm(d));
                    b.and_(p, Operand::Reg(p), Operand::Imm(1));
                    b.if_else(
                        Operand::Reg(p),
                        |b| {
                            b.mad(tmp, Operand::Reg(v), Operand::Imm(3), Operand::Imm(d));
                            b.and_(tmp, Operand::Reg(tmp), Operand::Imm(table - 1));
                            b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                            b.ld_global(tmp, Operand::Reg(tmp), data as i32);
                            b.add(acc, Operand::Reg(acc), Operand::Reg(tmp));
                        },
                        |b| {
                            b.mad(tmp, Operand::Reg(v), Operand::Imm(5), Operand::Imm(d + 7));
                            b.and_(tmp, Operand::Reg(tmp), Operand::Imm(table - 1));
                            b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                            b.ld_global(tmp, Operand::Reg(tmp), data as i32);
                            b.mad(acc, Operand::Reg(acc), Operand::Imm(3), Operand::Reg(tmp));
                        },
                    );
                }
                // Re-seed the branch bits from the accumulator so every
                // iteration diverges differently.
                b.add(tmp, Operand::Reg(acc), Operand::Reg(gid));
                b.and_(tmp, Operand::Reg(tmp), Operand::Imm(table - 1));
                b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                b.ld_global(v, Operand::Reg(tmp), data as i32);
            },
        );
        b.shl(tmp, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(acc));
        b.pad_regs(self.regs_per_thread);
        b.build(self.ctas, self.threads_per_cta)
            .expect("divtree kernel is valid")
    }
}

/// Atomic-contention histogram: all threads funnel increments into a
/// handful of hot bins, serialising at the memory system, between
/// latency-bound key loads.
#[derive(Debug, Clone, PartialEq)]
pub struct HotBinsParams {
    /// Kernel name.
    pub name: String,
    /// CTAs in the grid.
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Hot histogram bins (power of two; fewer bins = more contention).
    pub bins: u32,
    /// Keys hashed per thread.
    pub iters: u32,
    /// Declared register footprint per thread.
    pub regs_per_thread: u16,
}

impl Default for HotBinsParams {
    fn default() -> Self {
        HotBinsParams {
            name: "hotbins".to_string(),
            ctas: 60,
            threads_per_cta: 64,
            bins: 8,
            iters: 2,
            regs_per_thread: 12,
        }
    }
}

impl HotBinsParams {
    /// Builds the kernel.
    pub fn build(&self) -> Kernel {
        let n = self.ctas * self.threads_per_cta;
        let keys = 4096u32;
        let bins = self.bins.max(1).next_power_of_two();
        let mut r = rng(0x4077_b125);
        let mut b = KernelBuilder::new(self.name.clone());
        let hist = b.alloc_global(bins as usize);
        let data = b.alloc_global_init(&rand_words(&mut r, keys as usize));
        let out = b.alloc_global(n as usize);

        let gid = b.reg();
        let k = b.reg();
        let acc = b.reg();
        let tmp = b.reg();
        let i = b.reg();
        b.global_thread_id(gid);
        b.mov(acc, Operand::Imm(0));
        b.for_range(
            i,
            Operand::Imm(0),
            Operand::Imm(self.iters.max(1)),
            1,
            |b, i| {
                // Latency-bound gather of the next key…
                b.mad(tmp, Operand::Reg(i), Operand::Imm(n), Operand::Reg(gid));
                b.add(tmp, Operand::Reg(tmp), Operand::Reg(acc));
                b.and_(tmp, Operand::Reg(tmp), Operand::Imm(keys - 1));
                b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                b.ld_global(k, Operand::Reg(tmp), data as i32);
                // …then a contended increment of its hot bin.
                b.and_(tmp, Operand::Reg(k), Operand::Imm(bins - 1));
                b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                b.atom(
                    AtomOp::Add,
                    None,
                    Operand::Reg(tmp),
                    hist as i32,
                    Operand::Imm(1),
                );
                b.add(acc, Operand::Reg(acc), Operand::Reg(k));
            },
        );
        b.shl(tmp, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(acc));
        b.pad_regs(self.regs_per_thread);
        b.build(self.ctas, self.threads_per_cta)
            .expect("hotbins kernel is valid")
    }

    /// CPU reference: the final bin counts this kernel must produce.
    pub fn reference(&self) -> Vec<u32> {
        let n = self.ctas * self.threads_per_cta;
        let keys = 4096u32;
        let bins = self.bins.max(1).next_power_of_two();
        let mut r = rng(0x4077_b125);
        let data = rand_words(&mut r, keys as usize);
        let mut hist = vec![0u32; bins as usize];
        for gid in 0..n {
            let mut acc = 0u32;
            for i in 0..self.iters.max(1) {
                let idx = i.wrapping_mul(n).wrapping_add(gid).wrapping_add(acc) & (keys - 1);
                let k = data[idx as usize];
                hist[(k & (bins - 1)) as usize] += 1;
                acc = acc.wrapping_add(k);
            }
        }
        hist
    }
}

/// Producer-consumer barrier relay: warp 0 stages data through shared
/// memory, a barrier hands it to warp 1, which consumes and accumulates —
/// the tight barrier cadence of software-pipelined kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayParams {
    /// Kernel name.
    pub name: String,
    /// CTAs in the grid.
    pub ctas: u32,
    /// Threads per CTA (at least two warps).
    pub threads_per_cta: u32,
    /// Relay rounds (two barriers each).
    pub iters: u32,
    /// Declared shared-memory footprint per CTA.
    pub smem_bytes: u32,
    /// Declared register footprint per thread.
    pub regs_per_thread: u16,
}

impl Default for RelayParams {
    fn default() -> Self {
        RelayParams {
            name: "relay".to_string(),
            ctas: 60,
            threads_per_cta: 64,
            iters: 2,
            smem_bytes: 1024,
            regs_per_thread: 12,
        }
    }
}

impl RelayParams {
    /// Builds the kernel.
    pub fn build(&self) -> Kernel {
        let table = 4096u32;
        let n = self.ctas * self.threads_per_cta;
        let mut r = rng(0x4e1a_0003);
        let mut b = KernelBuilder::new(self.name.clone());
        let src = b.alloc_global_init(&rand_words(&mut r, table as usize));
        let out = b.alloc_global(n as usize);
        let buf = b.alloc_shared(vt_isa::WARP_SIZE);
        b.pad_smem(self.smem_bytes);

        let gid = b.reg();
        let soff = b.reg();
        let p = b.reg();
        let v = b.reg();
        let acc = b.reg();
        let tmp = b.reg();
        let i = b.reg();
        b.global_thread_id(gid);
        b.shl(soff, Operand::Sreg(Sreg::Lane), Operand::Imm(2));
        b.mov(acc, Operand::Imm(0));
        b.for_range(
            i,
            Operand::Imm(0),
            Operand::Imm(self.iters.max(1)),
            1,
            |b, i| {
                // Producer warp: gather a fresh line and stage it.
                b.set_eq(p, Operand::Sreg(Sreg::WarpId), Operand::Imm(0));
                b.if_(Operand::Reg(p), |b| {
                    b.mad(tmp, Operand::Reg(i), Operand::Imm(n), Operand::Reg(gid));
                    b.mul(tmp, Operand::Reg(tmp), Operand::Imm(7));
                    b.and_(tmp, Operand::Reg(tmp), Operand::Imm(table - 1));
                    b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                    b.ld_global(v, Operand::Reg(tmp), src as i32);
                    b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(v));
                });
                b.bar();
                // Consumer warps: drain the staged line, fold it in, and
                // chase one more latency-bound load of their own.
                b.set_ne(p, Operand::Sreg(Sreg::WarpId), Operand::Imm(0));
                b.if_(Operand::Reg(p), |b| {
                    b.ld_shared(v, Operand::Reg(soff), buf as i32);
                    b.mad(acc, Operand::Reg(acc), Operand::Imm(3), Operand::Reg(v));
                    b.add(tmp, Operand::Reg(gid), Operand::Reg(v));
                    b.and_(tmp, Operand::Reg(tmp), Operand::Imm(table - 1));
                    b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                    b.ld_global(tmp, Operand::Reg(tmp), src as i32);
                    b.add(acc, Operand::Reg(acc), Operand::Reg(tmp));
                });
                // Second barrier: the producer may not overwrite the stage
                // until every consumer has drained it.
                b.bar();
            },
        );
        b.shl(tmp, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(acc));
        b.pad_regs(self.regs_per_thread);
        b.build(self.ctas, self.threads_per_cta)
            .expect("relay kernel is valid")
    }
}

/// Irregular graph frontier: each thread tests a frontier flag and, when
/// active, walks a variable-degree adjacency list — the inner loop of a
/// BFS/SSSP push phase, with warp-divergent trip counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierParams {
    /// Kernel name.
    pub name: String,
    /// CTAs in the grid.
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Maximum per-node degree (trip counts vary in `1..=max_degree`).
    pub max_degree: u32,
    /// Frontier sweeps.
    pub iters: u32,
    /// Declared register footprint per thread.
    pub regs_per_thread: u16,
}

impl Default for FrontierParams {
    fn default() -> Self {
        FrontierParams {
            name: "frontier".to_string(),
            ctas: 60,
            threads_per_cta: 64,
            max_degree: 4,
            iters: 2,
            regs_per_thread: 14,
        }
    }
}

impl FrontierParams {
    /// Builds the kernel.
    pub fn build(&self) -> Kernel {
        let nodes = 2048u32;
        let n = self.ctas * self.threads_per_cta;
        let deg_max = self.max_degree.max(1);
        let mut r = rng(0xf407_1e02);
        let mut b = KernelBuilder::new(self.name.clone());
        // Roughly half the nodes are on the frontier each sweep.
        let frontier = b.alloc_global_init(
            &(0..nodes)
                .map(|_| u32::from(r.gen_bool(0.5)))
                .collect::<Vec<_>>(),
        );
        let degs = b.alloc_global_init(
            &(0..nodes)
                .map(|_| r.gen_range(1..deg_max + 1))
                .collect::<Vec<_>>(),
        );
        let adj = b.alloc_global_init(&rand_indices(&mut r, (nodes * deg_max) as usize, nodes));
        let vals = b.alloc_global_init(&rand_words(&mut r, nodes as usize));
        let out = b.alloc_global(n as usize);

        let gid = b.reg();
        let node = b.reg();
        let acc = b.reg();
        let f = b.reg();
        let deg = b.reg();
        let j = b.reg();
        let tmp = b.reg();
        let i = b.reg();
        b.global_thread_id(gid);
        b.and_(node, Operand::Reg(gid), Operand::Imm(nodes - 1));
        b.mov(acc, Operand::Imm(0));
        b.for_range(
            i,
            Operand::Imm(0),
            Operand::Imm(self.iters.max(1)),
            1,
            |b, _| {
                b.shl(tmp, Operand::Reg(node), Operand::Imm(2));
                b.ld_global(f, Operand::Reg(tmp), frontier as i32);
                b.if_(Operand::Reg(f), |b| {
                    b.shl(tmp, Operand::Reg(node), Operand::Imm(2));
                    b.ld_global(deg, Operand::Reg(tmp), degs as i32);
                    b.mov(j, Operand::Imm(0));
                    b.while_(
                        |b| {
                            let c = b.reg();
                            b.set_lt(c, Operand::Reg(j), Operand::Reg(deg));
                            Operand::Reg(c)
                        },
                        |b| {
                            // Neighbour id, then its value: two dependent
                            // gathers per edge.
                            b.mad(
                                tmp,
                                Operand::Reg(node),
                                Operand::Imm(deg_max),
                                Operand::Reg(j),
                            );
                            b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                            b.ld_global(tmp, Operand::Reg(tmp), adj as i32);
                            b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                            b.ld_global(tmp, Operand::Reg(tmp), vals as i32);
                            b.add(acc, Operand::Reg(acc), Operand::Reg(tmp));
                            b.add(j, Operand::Reg(j), Operand::Imm(1));
                        },
                    );
                });
                // Hop to the next node for the following sweep.
                b.add(node, Operand::Reg(node), Operand::Reg(acc));
                b.and_(node, Operand::Reg(node), Operand::Imm(nodes - 1));
            },
        );
        b.shl(tmp, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(acc));
        b.pad_regs(self.regs_per_thread);
        b.build(self.ctas, self.threads_per_cta)
            .expect("frontier kernel is valid")
    }
}

/// Register-pressure staircase: a chain of live values each produced from
/// a dependent load, forcing a deep register footprint — the kernel class
/// whose occupancy the register file, not the scheduler, limits.
#[derive(Debug, Clone, PartialEq)]
pub struct RegStairsParams {
    /// Kernel name.
    pub name: String,
    /// CTAs in the grid.
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Live values in the staircase.
    pub steps: u32,
    /// Outer iterations.
    pub iters: u32,
    /// Declared register footprint per thread (the staircase is padded up
    /// to this — 96 makes the register file bind on Fermi-class limits).
    pub regs_per_thread: u16,
}

impl Default for RegStairsParams {
    fn default() -> Self {
        RegStairsParams {
            name: "regstairs".to_string(),
            ctas: 60,
            threads_per_cta: 64,
            steps: 6,
            iters: 2,
            regs_per_thread: 96,
        }
    }
}

impl RegStairsParams {
    /// Builds the kernel.
    pub fn build(&self) -> Kernel {
        let table = 4096u32;
        let n = self.ctas * self.threads_per_cta;
        let mut r = rng(0x4e65_7a15);
        let mut b = KernelBuilder::new(self.name.clone());
        let data = b.alloc_global_init(&rand_words(&mut r, table as usize));
        let out = b.alloc_global(n as usize);

        let gid = b.reg();
        let tmp = b.reg();
        let i = b.reg();
        let steps: Vec<_> = (0..self.steps.max(2)).map(|_| b.reg()).collect();
        b.global_thread_id(gid);
        // Build the staircase: each step loads through the previous one,
        // and every step stays live until the final fold.
        b.and_(tmp, Operand::Reg(gid), Operand::Imm(table - 1));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_global(steps[0], Operand::Reg(tmp), data as i32);
        for w in steps.windows(2) {
            let (prev, next) = (w[0], w[1]);
            b.and_(tmp, Operand::Reg(prev), Operand::Imm(table - 1));
            b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
            b.ld_global(tmp, Operand::Reg(tmp), data as i32);
            b.mad(next, Operand::Reg(prev), Operand::Imm(3), Operand::Reg(tmp));
        }
        b.for_range(
            i,
            Operand::Imm(0),
            Operand::Imm(self.iters.max(1)),
            1,
            |b, _| {
                // Rotate the staircase: the top feeds a load that refreshes
                // the bottom, keeping every level live across iterations.
                let top = *steps.last().expect("at least two steps");
                b.add(tmp, Operand::Reg(top), Operand::Reg(gid));
                b.and_(tmp, Operand::Reg(tmp), Operand::Imm(table - 1));
                b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                b.ld_global(tmp, Operand::Reg(tmp), data as i32);
                b.add(steps[0], Operand::Reg(steps[0]), Operand::Reg(tmp));
                for w in steps.windows(2) {
                    let (prev, next) = (w[0], w[1]);
                    b.mad(
                        next,
                        Operand::Reg(next),
                        Operand::Imm(5),
                        Operand::Reg(prev),
                    );
                }
            },
        );
        for s in &steps[1..] {
            b.add(steps[0], Operand::Reg(steps[0]), Operand::Reg(*s));
        }
        b.shl(tmp, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(steps[0]));
        b.pad_regs(self.regs_per_thread);
        b.build(self.ctas, self.threads_per_cta)
            .expect("regstairs kernel is valid")
    }
}

/// Shared-memory bank-conflict sweep: every lane of a warp strides onto
/// the same bank, serialising each shared access `ways`-fold, inside a
/// shared-memory footprint big enough that smem limits occupancy.
#[derive(Debug, Clone, PartialEq)]
pub struct BankStormParams {
    /// Kernel name.
    pub name: String,
    /// CTAs in the grid.
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Conflict ways: lane stride in words (32 = every lane on one bank).
    pub ways: u32,
    /// Shared round-trips per thread.
    pub iters: u32,
    /// Declared shared-memory footprint per CTA (8 KiB makes shared
    /// memory bind on Fermi-class limits).
    pub smem_bytes: u32,
    /// Declared register footprint per thread.
    pub regs_per_thread: u16,
}

impl Default for BankStormParams {
    fn default() -> Self {
        BankStormParams {
            name: "bankstorm".to_string(),
            ctas: 60,
            threads_per_cta: 64,
            ways: 32,
            iters: 2,
            smem_bytes: 8 * 1024,
            regs_per_thread: 12,
        }
    }
}

impl BankStormParams {
    /// Builds the kernel.
    pub fn build(&self) -> Kernel {
        let n = self.ctas * self.threads_per_cta;
        let mut r = rng(0xba9c_5707);
        let mut b = KernelBuilder::new(self.name.clone());
        let src = b.alloc_global_init(&rand_words(&mut r, 4096));
        let out = b.alloc_global(n as usize);
        let words = (self.smem_bytes.max(256) / 4).next_power_of_two();
        let buf = b.alloc_shared(words);

        let gid = b.reg();
        let soff = b.reg();
        let v = b.reg();
        let g = b.reg();
        let tmp = b.reg();
        let i = b.reg();
        b.global_thread_id(gid);
        // Byte offset tid*ways*4 mod the buffer: with ways=32 every lane
        // of a warp lands on bank 0 — a full 32-way conflict per access.
        b.mul(
            soff,
            Operand::Sreg(Sreg::Tid),
            Operand::Imm(self.ways.max(1) * 4),
        );
        b.and_(soff, Operand::Reg(soff), Operand::Imm(words * 4 - 1));
        b.and_(tmp, Operand::Reg(gid), Operand::Imm(4095));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(tmp), src as i32);
        b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(v));
        b.bar();
        b.for_range(
            i,
            Operand::Imm(0),
            Operand::Imm(self.iters.max(1)),
            1,
            |b, i| {
                b.ld_shared(tmp, Operand::Reg(soff), buf as i32);
                b.mad(v, Operand::Reg(v), Operand::Imm(3), Operand::Reg(tmp));
                b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(v));
                b.mad(tmp, Operand::Reg(i), Operand::Imm(n), Operand::Reg(gid));
                b.and_(tmp, Operand::Reg(tmp), Operand::Imm(4095));
                b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                b.ld_global(g, Operand::Reg(tmp), src as i32);
                b.add(v, Operand::Reg(v), Operand::Reg(g));
            },
        );
        b.shl(tmp, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(v));
        b.pad_regs(self.regs_per_thread);
        b.build(self.ctas, self.threads_per_cta)
            .expect("bankstorm kernel is valid")
    }
}
