//! Parameterised synthetic-kernel generator for sensitivity sweeps and
//! property tests: dial in CTA shape, register/shared-memory footprint,
//! memory intensity and access pattern.

use crate::kernels::util::{rand_indices, rng};
use vt_isa::op::{Operand, Sreg};
use vt_isa::{Kernel, KernelBuilder};

/// How the generated kernel's global loads address memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Unit-stride: one transaction per warp access.
    Coalesced,
    /// Fixed word stride between consecutive threads: `stride ≥ 32` means
    /// one transaction per lane.
    Strided(u32),
    /// Data-dependent gather through a random index array.
    Random,
}

/// The knobs of a synthetic kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticParams {
    /// Kernel name.
    pub name: String,
    /// CTAs in the grid.
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Declared register footprint per thread.
    pub regs_per_thread: u16,
    /// Declared shared memory per CTA.
    pub smem_bytes: u32,
    /// Outer loop iterations.
    pub iters: u32,
    /// Global loads per iteration.
    pub loads_per_iter: u32,
    /// Dependent ALU instructions between loads (arithmetic intensity).
    pub alu_per_load: u32,
    /// Access pattern of the loads.
    pub access: AccessPattern,
    /// Whether to place a CTA barrier at the end of each iteration.
    pub barrier_per_iter: bool,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            name: "synthetic".to_string(),
            ctas: 60,
            threads_per_cta: 64,
            regs_per_thread: 16,
            smem_bytes: 0,
            iters: 8,
            loads_per_iter: 2,
            alu_per_load: 4,
            access: AccessPattern::Coalesced,
            barrier_per_iter: false,
        }
    }
}

impl SyntheticParams {
    /// A memory-latency-bound, scheduling-limited preset (the shape VT
    /// accelerates most).
    pub fn latency_bound() -> SyntheticParams {
        SyntheticParams {
            name: "latency-bound".to_string(),
            access: AccessPattern::Random,
            alu_per_load: 1,
            ..SyntheticParams::default()
        }
    }

    /// A compute-bound preset (dense ALU chains, few loads).
    pub fn compute_bound() -> SyntheticParams {
        SyntheticParams {
            name: "compute-bound".to_string(),
            loads_per_iter: 1,
            alu_per_load: 24,
            ..SyntheticParams::default()
        }
    }

    /// Builds the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the parameters produce an invalid program (degenerate
    /// geometry); all reachable presets are valid.
    pub fn build(&self) -> Kernel {
        let n = self.ctas * self.threads_per_cta;
        let footprint = (n * self.loads_per_iter.max(1) * self.iters.max(1)).max(n);
        let words = match self.access {
            AccessPattern::Strided(s) => footprint * s.max(1),
            _ => footprint,
        }
        .min(1 << 22); // cap the image at 16 MiB
        let mut b = KernelBuilder::new(self.name.clone());
        let data = b.alloc_global(words as usize);
        let idx = match self.access {
            AccessPattern::Random => {
                let mut r = rng(0x5eed + u64::from(n));
                Some(b.alloc_global_init(&rand_indices(&mut r, n as usize, words)))
            }
            _ => None,
        };
        let out = b.alloc_global(n as usize);

        let gid = b.reg();
        let acc = b.reg();
        let addr = b.reg();
        let v = b.reg();
        let i = b.reg();
        let tmp = b.reg();
        b.global_thread_id(gid);
        b.mov(acc, Operand::Imm(1));
        b.for_range(
            i,
            Operand::Imm(0),
            Operand::Imm(self.iters.max(1)),
            1,
            |b, i| {
                for l in 0..self.loads_per_iter {
                    match self.access {
                        AccessPattern::Coalesced => {
                            // addr = ((i*loads + l)*n + gid) * 4, wrapped.
                            b.mad(
                                tmp,
                                Operand::Reg(i),
                                Operand::Imm(self.loads_per_iter),
                                Operand::Imm(l),
                            );
                            b.mad(tmp, Operand::Reg(tmp), Operand::Imm(n), Operand::Reg(gid));
                            b.rem(tmp, Operand::Reg(tmp), Operand::Imm(words));
                            b.shl(addr, Operand::Reg(tmp), Operand::Imm(2));
                        }
                        AccessPattern::Strided(s) => {
                            b.mad(
                                tmp,
                                Operand::Reg(i),
                                Operand::Imm(self.loads_per_iter),
                                Operand::Imm(l),
                            );
                            b.mad(tmp, Operand::Reg(tmp), Operand::Imm(n), Operand::Reg(gid));
                            b.mul(tmp, Operand::Reg(tmp), Operand::Imm(s.max(1)));
                            b.rem(tmp, Operand::Reg(tmp), Operand::Imm(words));
                            b.shl(addr, Operand::Reg(tmp), Operand::Imm(2));
                        }
                        AccessPattern::Random => {
                            // Chase through the index array, offset by the
                            // running accumulator so iterations depend on the
                            // previous load.
                            b.add(tmp, Operand::Reg(gid), Operand::Reg(acc));
                            b.rem(tmp, Operand::Reg(tmp), Operand::Imm(n));
                            b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
                            b.ld_global(
                                tmp,
                                Operand::Reg(tmp),
                                idx.expect("random has index") as i32,
                            );
                            b.shl(addr, Operand::Reg(tmp), Operand::Imm(2));
                        }
                    }
                    b.ld_global(v, Operand::Reg(addr), data as i32);
                    b.add(acc, Operand::Reg(acc), Operand::Reg(v));
                    for _ in 0..self.alu_per_load {
                        b.mad(acc, Operand::Reg(acc), Operand::Imm(3), Operand::Imm(1));
                    }
                }
                if self.barrier_per_iter {
                    b.bar();
                }
            },
        );
        b.shl(tmp, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(acc));
        if self.smem_bytes > 0 {
            // Touch the scratchpad so the declared footprint is not dead.
            let s = b.alloc_shared(1);
            b.shl(tmp, Operand::Sreg(Sreg::Tid), Operand::Imm(0));
            b.st_shared(Operand::Imm(s), 0, Operand::Reg(tmp));
            b.pad_smem(self.smem_bytes);
        }
        b.pad_regs(self.regs_per_thread);
        b.exit();
        b.build(self.ctas, self.threads_per_cta)
            .expect("synthetic kernel is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_core::{occupancy, CoreConfig};
    use vt_isa::interp::Interpreter;

    fn tiny(p: SyntheticParams) -> SyntheticParams {
        SyntheticParams {
            ctas: 4,
            iters: 2,
            ..p
        }
    }

    #[test]
    fn all_presets_run() {
        for p in [
            tiny(SyntheticParams::default()),
            tiny(SyntheticParams::latency_bound()),
            tiny(SyntheticParams::compute_bound()),
            tiny(SyntheticParams {
                access: AccessPattern::Strided(32),
                barrier_per_iter: true,
                smem_bytes: 1024,
                ..SyntheticParams::default()
            }),
        ] {
            let k = p.build();
            Interpreter::new(&k).unwrap().run().unwrap_or_else(|e| {
                panic!("{} failed: {e}", k.name());
            });
        }
    }

    #[test]
    fn footprint_knobs_control_occupancy() {
        let core = CoreConfig::default();
        let lean = tiny(SyntheticParams {
            regs_per_thread: 12,
            ..SyntheticParams::default()
        });
        let fat = tiny(SyntheticParams {
            regs_per_thread: 96,
            ..SyntheticParams::default()
        });
        let occ_lean = occupancy::analyze(&core, &lean.build());
        let occ_fat = occupancy::analyze(&core, &fat.build());
        assert!(occ_lean.limiter.is_scheduling());
        assert!(!occ_fat.limiter.is_scheduling());
        assert!(occ_fat.by_registers < occ_lean.by_registers);
    }

    #[test]
    fn generated_kernels_are_deterministic() {
        let p = tiny(SyntheticParams::latency_bound());
        assert_eq!(p.build(), p.build());
    }
}
