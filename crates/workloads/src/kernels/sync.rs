//! Synchronisation-heavy kernels: neural-network training, sequence
//! alignment wavefronts and tree reductions — barrier cadence plus
//! memory latency.

use super::util::{rand_floats, rng};
use crate::suite::Scale;
use vt_isa::op::{AtomOp, Operand, Sreg};
use vt_isa::{Kernel, KernelBuilder};

/// `backprop`-like: strided weight gather, per-thread multiply, then a
/// shared-memory tree reduction per CTA. 256-thread CTAs make it
/// **warp-slot** limited (6 CTAs by warps vs 8 CTA slots).
pub fn backprop_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 256u32;
    let mut r = rng(0xbac0);
    let mut b = KernelBuilder::new("backprop");
    // 256 KiB weight matrix, re-read by successive layers: L2-resident.
    let wtable = 64 * 1024u32;
    let weights = b.alloc_global_init(&rand_floats(&mut r, wtable as usize));
    let input = b.alloc_global_init(&rand_floats(&mut r, threads as usize));
    let out = b.alloc_global(ctas as usize);
    let buf = b.alloc_shared(threads);

    let gid = b.reg();
    let soff = b.reg();
    let w = b.reg();
    let x = b.reg();
    let stride = b.reg();
    let p = b.reg();
    let other = b.reg();
    let y = b.reg();
    let tmp = b.reg();
    b.global_thread_id(gid);
    // Strided gather: thread t reads weights[(t * 2) mod table].
    b.shl(tmp, Operand::Reg(gid), Operand::Imm(1));
    b.and_(tmp, Operand::Reg(tmp), Operand::Imm(wtable - 1));
    b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
    b.ld_global(w, Operand::Reg(tmp), weights as i32);
    b.shl(tmp, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
    b.ld_global(x, Operand::Reg(tmp), input as i32);
    b.fmul(w, Operand::Reg(w), Operand::Reg(x));
    b.shl(soff, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
    b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(w));
    b.bar();
    b.mov(stride, Operand::Imm(threads / 2));
    b.while_(
        |b| {
            let c = b.reg();
            b.set_gt(c, Operand::Reg(stride), Operand::Imm(0));
            Operand::Reg(c)
        },
        |b| {
            b.set_lt(p, Operand::Sreg(Sreg::Tid), Operand::Reg(stride));
            b.if_(Operand::Reg(p), |b| {
                b.add(other, Operand::Sreg(Sreg::Tid), Operand::Reg(stride));
                b.shl(other, Operand::Reg(other), Operand::Imm(2));
                b.ld_shared(y, Operand::Reg(other), buf as i32);
                b.ld_shared(w, Operand::Reg(soff), buf as i32);
                b.fadd(w, Operand::Reg(w), Operand::Reg(y));
                b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(w));
            });
            b.bar();
            b.shr(stride, Operand::Reg(stride), Operand::Imm(1));
        },
    );
    b.set_eq(p, Operand::Sreg(Sreg::Tid), Operand::Imm(0));
    b.if_(Operand::Reg(p), |b| {
        b.ld_shared(w, Operand::Reg(soff), buf as i32);
        b.shl(tmp, Operand::Sreg(Sreg::CtaId), Operand::Imm(2));
        b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(w));
    });
    // Tightened from 12 after the static analyzer confirmed only 10
    // registers are ever referenced (occupancy stays warp-slot-limited).
    b.pad_regs(10);
    b.build(ctas, threads).expect("backprop kernel is valid")
}

/// `nw`-like (Needleman–Wunsch): single-warp CTAs marching a wavefront in
/// shared memory. One warp per CTA slot leaves 40 of 48 warp slots empty
/// under the baseline — the extreme scheduling-limited case.
pub fn nw_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 32u32;
    let n = ctas * threads;
    let mut r = rng(0x0002_1177);
    let mut b = KernelBuilder::new("nw");
    let score = b.alloc_global_init(&(0..n * 2).map(|_| r.gen_range(0..16)).collect::<Vec<_>>());
    let out = b.alloc_global(n as usize);
    let diag = b.alloc_shared(threads);
    b.pad_smem(2048);

    let gid = b.reg();
    let goff = b.reg();
    let soff = b.reg();
    let v = b.reg();
    let nb = b.reg();
    let t = b.reg();
    let tmp = b.reg();
    b.global_thread_id(gid);
    b.shl(goff, Operand::Reg(gid), Operand::Imm(2));
    b.shl(soff, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
    b.ld_global(v, Operand::Reg(goff), score as i32);
    b.st_shared(Operand::Reg(soff), diag as i32, Operand::Reg(v));
    b.bar();
    b.for_range(t, Operand::Imm(0), Operand::Imm(scale.iters), 1, |b, t| {
        // Each step reads the previous diagonal cell and a fresh global
        // score, then publishes the new cell.
        b.add(tmp, Operand::Sreg(Sreg::Tid), Operand::Imm(threads - 1));
        b.and_(tmp, Operand::Reg(tmp), Operand::Imm(threads - 1));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_shared(nb, Operand::Reg(tmp), diag as i32);
        b.mad(tmp, Operand::Reg(t), Operand::Imm(n), Operand::Reg(gid));
        b.rem(tmp, Operand::Reg(tmp), Operand::Imm(n * 2));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_global(tmp, Operand::Reg(tmp), score as i32);
        b.add(nb, Operand::Reg(nb), Operand::Reg(tmp));
        b.min_(v, Operand::Reg(v), Operand::Reg(nb));
        b.bar();
        b.st_shared(Operand::Reg(soff), diag as i32, Operand::Reg(v));
        b.bar();
    });
    b.st_global(Operand::Reg(goff), out as i32, Operand::Reg(v));
    b.pad_regs(12);
    b.build(ctas, threads).expect("nw kernel is valid")
}

/// `reduction`-like: coalesced loads, shared-memory tree reduction and a
/// final global atomic per CTA.
pub fn reduction_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 128u32;
    let n = ctas * threads;
    let mut b = KernelBuilder::new("reduction");
    // A 256 KiB operand table read with wrapped grid-stride indices:
    // L2-resident after the first wave, so the load phase is bound by L2
    // latency instead of raw DRAM bandwidth.
    let table = 64 * 1024u32;
    let total = b.alloc_global(1);
    let data = b.alloc_global_init(&(0..table).collect::<Vec<u32>>());
    let buf = b.alloc_shared(threads);

    let gid = b.reg();
    let soff = b.reg();
    let a = b.reg();
    let c = b.reg();
    let stride = b.reg();
    let p = b.reg();
    let other = b.reg();
    let tmp = b.reg();
    b.global_thread_id(gid);
    b.and_(tmp, Operand::Reg(gid), Operand::Imm(table - 1));
    b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
    b.ld_global(a, Operand::Reg(tmp), data as i32);
    b.add(tmp, Operand::Reg(gid), Operand::Imm(n));
    b.and_(tmp, Operand::Reg(tmp), Operand::Imm(table - 1));
    b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
    b.ld_global(c, Operand::Reg(tmp), data as i32);
    b.add(a, Operand::Reg(a), Operand::Reg(c));
    b.shl(soff, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
    b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(a));
    b.bar();
    b.mov(stride, Operand::Imm(threads / 2));
    b.while_(
        |b| {
            let cnd = b.reg();
            b.set_gt(cnd, Operand::Reg(stride), Operand::Imm(0));
            Operand::Reg(cnd)
        },
        |b| {
            b.set_lt(p, Operand::Sreg(Sreg::Tid), Operand::Reg(stride));
            b.if_(Operand::Reg(p), |b| {
                b.add(other, Operand::Sreg(Sreg::Tid), Operand::Reg(stride));
                b.shl(other, Operand::Reg(other), Operand::Imm(2));
                b.ld_shared(c, Operand::Reg(other), buf as i32);
                b.ld_shared(a, Operand::Reg(soff), buf as i32);
                b.add(a, Operand::Reg(a), Operand::Reg(c));
                b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(a));
            });
            b.bar();
            b.shr(stride, Operand::Reg(stride), Operand::Imm(1));
        },
    );
    b.set_eq(p, Operand::Sreg(Sreg::Tid), Operand::Imm(0));
    b.if_(Operand::Reg(p), |b| {
        b.ld_shared(a, Operand::Reg(soff), buf as i32);
        b.atom(AtomOp::Add, None, Operand::Imm(total), 0, Operand::Reg(a));
    });
    b.pad_regs(10);
    b.build(ctas, threads).expect("reduction kernel is valid")
}

/// CPU reference for [`reduction_like`]: the grand total it must produce.
pub fn reduction_reference(scale: &Scale) -> u32 {
    let n = scale.ctas * 128;
    let table = 64 * 1024u32;
    (0..n)
        .map(|gid| (gid & (table - 1)).wrapping_add((gid + n) & (table - 1)))
        .fold(0u32, |acc, v| acc.wrapping_add(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_core::{occupancy, CoreConfig, Limiter};
    use vt_isa::interp::Interpreter;

    fn tiny() -> Scale {
        Scale { ctas: 3, iters: 2 }
    }

    #[test]
    fn backprop_is_warp_slot_limited() {
        let k = backprop_like(&tiny());
        Interpreter::new(&k).unwrap().run().unwrap();
        let occ = occupancy::analyze(&CoreConfig::default(), &k);
        assert_eq!(occ.limiter, Limiter::WarpSlots);
    }

    #[test]
    fn nw_wastes_most_warp_slots_under_baseline() {
        let k = nw_like(&tiny());
        Interpreter::new(&k).unwrap().run().unwrap();
        let occ = occupancy::analyze(&CoreConfig::default(), &k);
        assert_eq!(occ.limiter, Limiter::CtaSlots);
        assert_eq!(occ.baseline_ctas, 8, "8 single-warp CTAs");
        assert!(occ.baseline_thread_slot_utilization() < 0.25);
    }

    #[test]
    fn reduction_total_matches_cpu() {
        let s = tiny();
        let k = reduction_like(&s);
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(r.load_words(0, 1)[0], reduction_reference(&s));
    }
}
