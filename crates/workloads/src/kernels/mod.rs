//! The kernel builders, grouped by behaviour class.

pub mod dense;
pub mod irregular;
pub mod stencil;
pub mod sync;

pub(crate) mod util {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic RNG for workload data; every kernel derives its data
    /// from a fixed per-kernel seed so runs are reproducible.
    pub fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    /// `n` random indices in `[0, bound)`.
    pub fn rand_indices(rng: &mut SmallRng, n: usize, bound: u32) -> Vec<u32> {
        (0..n).map(|_| rng.gen_range(0..bound.max(1))).collect()
    }

    /// `n` random words.
    pub fn rand_words(rng: &mut SmallRng, n: usize) -> Vec<u32> {
        (0..n).map(|_| rng.gen()).collect()
    }

    /// `n` random small floats as bit patterns.
    pub fn rand_floats(rng: &mut SmallRng, n: usize) -> Vec<u32> {
        (0..n).map(|_| (rng.gen_range(0.0f32..4.0)).to_bits()).collect()
    }
}
