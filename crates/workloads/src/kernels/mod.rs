//! The kernel builders, grouped by behaviour class.

pub mod dense;
pub mod irregular;
pub mod stencil;
pub mod sync;

pub(crate) mod util {
    use vt_prng::Prng;

    /// Deterministic RNG for workload data; every kernel derives its data
    /// from a fixed per-kernel seed so runs are reproducible.
    pub fn rng(seed: u64) -> Prng {
        Prng::new(seed)
    }

    /// `n` random indices in `[0, bound)`.
    pub fn rand_indices(rng: &mut Prng, n: usize, bound: u32) -> Vec<u32> {
        (0..n).map(|_| rng.gen_range(0..bound.max(1))).collect()
    }

    /// `n` random words.
    pub fn rand_words(rng: &mut Prng, n: usize) -> Vec<u32> {
        (0..n).map(|_| rng.next_u32()).collect()
    }

    /// `n` random small floats as bit patterns.
    pub fn rand_floats(rng: &mut Prng, n: usize) -> Vec<u32> {
        (0..n)
            .map(|_| (rng.gen_range_f32(0.0..4.0)).to_bits())
            .collect()
    }
}
