//! Irregular, data-dependent access patterns: graph traversal, sparse
//! algebra, histogramming. Small CTAs and low register pressure make all
//! three scheduling-limited — the population Virtual Thread targets.

use super::util::{rand_words, rng};
use crate::suite::Scale;
use vt_isa::op::{AtomOp, Operand};
use vt_isa::{Kernel, KernelBuilder};

/// `bfs`-like: pointer chasing through a random index array with a
/// min-reduction over visited distances. 64-thread CTAs, ~14 registers,
/// no shared memory; latency-bound with almost no coalescing.
pub fn bfs_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 64u32;
    let n = ctas * threads;
    // Frontier graph of 32 Ki nodes (128 KiB per array): L2-resident, far
    // beyond the L1. Neighbour lists are clustered so one warp's gather
    // touches a handful of lines, like CSR adjacency runs.
    let nodes = 32 * 1024u32;
    let mut r = rng(0xb1f5);
    // Community-structured adjacency: all nodes of one 64-node block hop
    // to a common random block (plus a small in-block shuffle), so a
    // warp's chase stays within a handful of cache lines the way BFS
    // frontier expansion over a partitioned graph does. The hop target is
    // random per block, so every chase is still an L2 round trip.
    let block_jump: Vec<u32> = (0..nodes / 64)
        .map(|_| r.gen_range(0..nodes / 64) * 64)
        .collect();
    let mut b = KernelBuilder::new("bfs");
    let cols_data: Vec<u32> = (0..nodes)
        .map(|i| {
            let target = block_jump[(i / 64) as usize] + (i + r.gen_range(0..4)) % 64;
            target % nodes
        })
        .collect();
    let cols = b.alloc_global_init(&cols_data);
    let dist = b.alloc_global_init(
        &(0..nodes)
            .map(|_| r.gen_range(0..1_000_000))
            .collect::<Vec<_>>(),
    );
    let out = b.alloc_global(n as usize);

    let gid = b.reg();
    let off = b.reg();
    let v = b.reg();
    let d = b.reg();
    let a = b.reg();
    let i = b.reg();
    b.global_thread_id(gid);
    b.and_(v, Operand::Reg(gid), Operand::Imm(nodes - 1));
    b.shl(off, Operand::Reg(v), Operand::Imm(2));
    b.ld_global(v, Operand::Reg(off), cols as i32);
    b.mov(d, Operand::Imm(u32::MAX));
    b.for_range(i, Operand::Imm(0), Operand::Imm(scale.iters), 1, |b, _| {
        // Gather the distance of the current node, fold it in, then chase
        // to the next node through the adjacency array — a dependent
        // pointer chase whose latency only more warps can hide.
        b.shl(off, Operand::Reg(v), Operand::Imm(2));
        b.ld_global(a, Operand::Reg(off), dist as i32);
        b.min_(d, Operand::Reg(d), Operand::Reg(a));
        b.ld_global(v, Operand::Reg(off), cols as i32);
    });
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.st_global(Operand::Reg(off), out as i32, Operand::Reg(d));
    b.pad_regs(14);
    b.build(ctas, threads).expect("bfs kernel is valid")
}

/// `spmv`-like: padded-CSR sparse matrix–vector product with per-row
/// variable nonzero counts (divergent loop trip counts) and an indexed
/// gather of the dense vector.
pub fn spmv_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 64u32;
    let n = ctas * threads;
    // An 8 Ki-row banded matrix (~320 KiB with its vectors): L2-resident,
    // so SpMV is bound by L2 gather latency rather than DRAM streaming —
    // the regime where sparse kernels are actually run repeatedly (solver
    // iterations) and where TLP is the latency-hiding lever.
    let rows = 8192u32;
    let max_deg = 4u32;
    let mut r = rng(0x0005_93a7);
    let mut b = KernelBuilder::new("spmv");
    let deg = b.alloc_global_init(
        &(0..rows)
            .map(|_| r.gen_range(1..max_deg + 1))
            .collect::<Vec<_>>(),
    );
    // Banded sparsity: each row's columns fall in a 64-wide window around
    // its own block, like the diagonal-dominant matrices SpMV suites use.
    // This keeps the x-vector gather local (few transactions, real reuse).
    let cols: Vec<u32> = (0..rows * max_deg)
        .map(|i| {
            let row = i / max_deg;
            let base = (row / 64) * 64;
            (base + r.gen_range(0..64)).min(rows - 1)
        })
        .collect();
    let cols = b.alloc_global_init(&cols);
    let vals = b.alloc_global_init(
        &(0..rows * max_deg)
            .map(|_| r.gen_range_f32(0.1..2.0).to_bits())
            .collect::<Vec<_>>(),
    );
    let xvec = b.alloc_global_init(
        &(0..rows)
            .map(|_| r.gen_range_f32(0.1..2.0).to_bits())
            .collect::<Vec<_>>(),
    );
    let out = b.alloc_global(n as usize);

    let gid = b.reg();
    let off = b.reg();
    let myrow = b.reg();
    let mydeg = b.reg();
    let acc = b.reg();
    let row = b.reg();
    let p = b.reg();
    b.global_thread_id(gid);
    b.and_(myrow, Operand::Reg(gid), Operand::Imm(rows - 1));
    b.shl(off, Operand::Reg(myrow), Operand::Imm(2));
    b.ld_global(mydeg, Operand::Reg(off), deg as i32);
    b.mul(row, Operand::Reg(myrow), Operand::Imm(max_deg * 4));
    b.mov(acc, Operand::Imm(0));
    // Unrolled over the padded degree: entries of one row sit in the same
    // cache lines, and issuing them back-to-back lets the misses merge in
    // the MSHRs the way a real unrolled SpMV inner loop does.
    for j in 0..max_deg {
        let col = b.reg();
        let val = b.reg();
        let x = b.reg();
        b.set_lt(p, Operand::Imm(j), Operand::Reg(mydeg));
        b.if_(Operand::Reg(p), |b| {
            b.ld_global(col, Operand::Reg(row), (cols + 4 * j) as i32);
            b.ld_global(val, Operand::Reg(row), (vals + 4 * j) as i32);
            b.shl(col, Operand::Reg(col), Operand::Imm(2));
            b.ld_global(x, Operand::Reg(col), xvec as i32);
            b.ffma(acc, Operand::Reg(val), Operand::Reg(x), Operand::Reg(acc));
        });
    }
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.st_global(Operand::Reg(off), out as i32, Operand::Reg(acc));
    b.pad_regs(16);
    b.build(ctas, threads).expect("spmv kernel is valid")
}

/// `histo`-like: contended global atomics into a 256-bin histogram.
/// Streaming loads, then serialised atomic updates at the L2.
pub fn histo_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 128u32;
    let n = ctas * threads;
    let samples = n * scale.iters;
    let mut r = rng(0x0004_1570);
    let mut b = KernelBuilder::new("histo");
    let hist = b.alloc_global(256);
    let data = b.alloc_global_init(&rand_words(&mut r, samples as usize));

    let gid = b.reg();
    let off = b.reg();
    let v = b.reg();
    let bin = b.reg();
    let i = b.reg();
    b.global_thread_id(gid);
    b.for_range(i, Operand::Imm(0), Operand::Imm(scale.iters), 1, |b, i| {
        // Grid-stride sampling keeps loads coalesced across the warp.
        b.mad(off, Operand::Reg(i), Operand::Imm(n), Operand::Reg(gid));
        b.shl(off, Operand::Reg(off), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(off), data as i32);
        b.and_(bin, Operand::Reg(v), Operand::Imm(255));
        b.shl(bin, Operand::Reg(bin), Operand::Imm(2));
        b.atom(
            AtomOp::Add,
            None,
            Operand::Reg(bin),
            hist as i32,
            Operand::Imm(1),
        );
    });
    b.pad_regs(10);
    b.build(ctas, threads).expect("histo kernel is valid")
}

/// Reference CPU histogram for `histo_like`, used by integration tests.
pub fn histo_reference(scale: &Scale) -> Vec<u32> {
    let n = scale.ctas * 128;
    let samples = n * scale.iters;
    let mut r = rng(0x0004_1570);
    let data = rand_words(&mut r, samples as usize);
    let mut hist = vec![0u32; 256];
    for v in data {
        hist[(v & 255) as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_core::{occupancy, CoreConfig, Limiter};
    use vt_isa::interp::Interpreter;

    fn tiny() -> Scale {
        Scale { ctas: 4, iters: 2 }
    }

    #[test]
    fn bfs_runs_and_is_cta_slot_limited() {
        let k = bfs_like(&tiny());
        Interpreter::new(&k).unwrap().run().unwrap();
        let occ = occupancy::analyze(&CoreConfig::default(), &k);
        assert_eq!(occ.limiter, Limiter::CtaSlots);
        assert!(occ.virtualization_headroom() > 2.0);
    }

    #[test]
    fn spmv_runs_and_is_scheduling_limited() {
        let k = spmv_like(&tiny());
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        assert!(r.max_simt_depth() >= 3, "variable-degree loops diverge");
        let occ = occupancy::analyze(&CoreConfig::default(), &k);
        assert!(occ.limiter.is_scheduling());
    }

    #[test]
    fn histo_matches_cpu_reference() {
        let s = tiny();
        let k = histo_like(&s);
        let r = Interpreter::new(&k).unwrap().run().unwrap();
        assert_eq!(r.load_words(0, 256), histo_reference(&s).as_slice());
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = bfs_like(&tiny());
        let b = bfs_like(&tiny());
        assert_eq!(a, b);
    }
}
