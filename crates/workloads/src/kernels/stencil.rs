//! Stencil-style kernels: thermal simulation, 3-D stencil, diffusion with
//! transcendentals, and grid path search.

use super::util::{rand_floats, rng};
use crate::suite::Scale;
use vt_isa::op::{Operand, SfuOp, Sreg};
use vt_isa::{Kernel, KernelBuilder};

/// `hotspot`-like: shared-memory-tiled 3-point stencil with a barrier per
/// time step. Modest shared memory keeps it scheduling-limited.
pub fn hotspot_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 64u32;
    let n = ctas * threads;
    let mut r = rng(0x0004_0757);
    let mut b = KernelBuilder::new("hotspot");
    let temp = b.alloc_global_init(&rand_floats(&mut r, n as usize));
    let out = b.alloc_global(n as usize);
    let tile = b.alloc_shared(threads);

    let gid = b.reg();
    let goff = b.reg();
    let soff = b.reg();
    let v = b.reg();
    let left = b.reg();
    let right = b.reg();
    let t = b.reg();
    let tmp = b.reg();
    b.global_thread_id(gid);
    b.shl(goff, Operand::Reg(gid), Operand::Imm(2));
    b.shl(soff, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
    b.ld_global(v, Operand::Reg(goff), temp as i32);
    b.for_range(t, Operand::Imm(0), Operand::Imm(scale.iters), 1, |b, _| {
        b.st_shared(Operand::Reg(soff), tile as i32, Operand::Reg(v));
        b.bar();
        // Neighbours wrap within the tile (halo cells elided; the timing
        // behaviour — smem traffic + barrier cadence — is what matters).
        b.add(tmp, Operand::Sreg(Sreg::Tid), Operand::Imm(threads - 1));
        b.and_(tmp, Operand::Reg(tmp), Operand::Imm(threads - 1));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_shared(left, Operand::Reg(tmp), tile as i32);
        b.add(tmp, Operand::Sreg(Sreg::Tid), Operand::Imm(1));
        b.and_(tmp, Operand::Reg(tmp), Operand::Imm(threads - 1));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_shared(right, Operand::Reg(tmp), tile as i32);
        b.fadd(left, Operand::Reg(left), Operand::Reg(right));
        b.ffma(v, Operand::Reg(left), Operand::fimm(0.25), Operand::Reg(v));
        b.fmul(v, Operand::Reg(v), Operand::fimm(0.8));
        b.bar();
    });
    b.st_global(Operand::Reg(goff), out as i32, Operand::Reg(v));
    b.pad_regs(20);
    b.build(ctas, threads).expect("hotspot kernel is valid")
}

/// Parboil-`stencil`-like: 3-D 4-point stencil straight from global
/// memory. The row/plane strides split each warp access into several
/// memory transactions, stressing MSHRs and DRAM row locality.
pub fn stencil3d_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 64u32;
    let n = ctas * threads;
    let row = 64u32; // elements per row
    let plane = row * 16;
    let mut r = rng(0x0057_ec11);
    let mut b = KernelBuilder::new("stencil");
    let grid = b.alloc_global_init(&rand_floats(&mut r, (n + plane + row + 1) as usize));
    let out = b.alloc_global(n as usize);

    let gid = b.reg();
    let off = b.reg();
    let acc = b.reg();
    let v = b.reg();
    let tmp = b.reg();
    let i = b.reg();
    b.global_thread_id(gid);
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.for_range(i, Operand::Imm(0), Operand::Imm(scale.iters), 1, |b, _| {
        b.ld_global(acc, Operand::Reg(off), grid as i32);
        b.ld_global(v, Operand::Reg(off), (grid + 4) as i32);
        b.fadd(acc, Operand::Reg(acc), Operand::Reg(v));
        b.ld_global(v, Operand::Reg(off), (grid + 4 * row) as i32);
        b.fadd(acc, Operand::Reg(acc), Operand::Reg(v));
        b.ld_global(v, Operand::Reg(off), (grid + 4 * plane) as i32);
        b.fadd(acc, Operand::Reg(acc), Operand::Reg(v));
        b.fmul(tmp, Operand::Reg(acc), Operand::fimm(0.25));
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(tmp));
    });
    b.pad_regs(20);
    b.build(ctas, threads).expect("stencil kernel is valid")
}

/// `srad`-like: diffusion coefficients with a chain of SFU
/// transcendentals per element. High register pressure (36/thread) makes
/// it the third capacity-limited kernel.
pub fn srad_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 128u32;
    let n = ctas * threads;
    let mut r = rng(0x0005_12ad);
    let mut b = KernelBuilder::new("srad");
    let img = b.alloc_global_init(&rand_floats(&mut r, (n + 1) as usize));
    let out = b.alloc_global(n as usize);

    let gid = b.reg();
    let off = b.reg();
    let v = b.reg();
    let nb = b.reg();
    let g = b.reg();
    let c = b.reg();
    let i = b.reg();
    b.global_thread_id(gid);
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.ld_global(v, Operand::Reg(off), img as i32);
    b.for_range(i, Operand::Imm(0), Operand::Imm(scale.iters), 1, |b, _| {
        b.ld_global(nb, Operand::Reg(off), (img + 4) as i32);
        b.fsub(g, Operand::Reg(nb), Operand::Reg(v));
        b.fmul(g, Operand::Reg(g), Operand::Reg(g));
        b.fadd(g, Operand::Reg(g), Operand::fimm(1.0));
        b.sfu(SfuOp::Sqrt, g, Operand::Reg(g));
        b.sfu(SfuOp::Rcp, c, Operand::Reg(g));
        b.ffma(v, Operand::Reg(c), Operand::Reg(nb), Operand::Reg(v));
        b.fmul(v, Operand::Reg(v), Operand::fimm(0.5));
    });
    b.st_global(Operand::Reg(off), out as i32, Operand::Reg(v));
    b.pad_regs(36);
    b.build(ctas, threads).expect("srad kernel is valid")
}

/// `pathfinder`-like: dynamic-programming wavefront held in shared
/// memory, one barrier per relaxation step, light global traffic.
pub fn pathfinder_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 64u32;
    let n = ctas * threads;
    let mut r = rng(0x9a7f);
    let mut b = KernelBuilder::new("pathfinder");
    let cost = b.alloc_global_init(&(0..n).map(|_| r.gen_range(0..100)).collect::<Vec<_>>());
    let out = b.alloc_global(n as usize);
    let wave = b.alloc_shared(threads);

    let gid = b.reg();
    let goff = b.reg();
    let soff = b.reg();
    let v = b.reg();
    let l = b.reg();
    let rr = b.reg();
    let t = b.reg();
    let tmp = b.reg();
    b.global_thread_id(gid);
    b.shl(goff, Operand::Reg(gid), Operand::Imm(2));
    b.shl(soff, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
    b.ld_global(v, Operand::Reg(goff), cost as i32);
    b.st_shared(Operand::Reg(soff), wave as i32, Operand::Reg(v));
    b.bar();
    b.for_range(t, Operand::Imm(0), Operand::Imm(scale.iters), 1, |b, _| {
        b.add(tmp, Operand::Sreg(Sreg::Tid), Operand::Imm(threads - 1));
        b.and_(tmp, Operand::Reg(tmp), Operand::Imm(threads - 1));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_shared(l, Operand::Reg(tmp), wave as i32);
        b.add(tmp, Operand::Sreg(Sreg::Tid), Operand::Imm(1));
        b.and_(tmp, Operand::Reg(tmp), Operand::Imm(threads - 1));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_shared(rr, Operand::Reg(tmp), wave as i32);
        b.min_(l, Operand::Reg(l), Operand::Reg(rr));
        b.bar();
        b.add(v, Operand::Reg(v), Operand::Reg(l));
        b.st_shared(Operand::Reg(soff), wave as i32, Operand::Reg(v));
        b.bar();
    });
    b.st_global(Operand::Reg(goff), out as i32, Operand::Reg(v));
    b.pad_regs(14);
    b.build(ctas, threads).expect("pathfinder kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_core::{occupancy, CoreConfig, Limiter};
    use vt_isa::interp::Interpreter;

    fn tiny() -> Scale {
        Scale { ctas: 4, iters: 2 }
    }

    #[test]
    fn all_stencils_run_on_the_interpreter() {
        for k in [
            hotspot_like(&tiny()),
            stencil3d_like(&tiny()),
            srad_like(&tiny()),
            pathfinder_like(&tiny()),
        ] {
            Interpreter::new(&k).unwrap().run().unwrap_or_else(|e| {
                panic!("{} failed: {e}", k.name());
            });
        }
    }

    #[test]
    fn srad_is_register_limited() {
        let occ = occupancy::analyze(&CoreConfig::default(), &srad_like(&tiny()));
        assert_eq!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn hotspot_and_pathfinder_are_scheduling_limited() {
        for k in [hotspot_like(&tiny()), pathfinder_like(&tiny())] {
            let occ = occupancy::analyze(&CoreConfig::default(), &k);
            assert!(
                occ.limiter.is_scheduling(),
                "{}: {:?}",
                k.name(),
                occ.limiter
            );
        }
    }

    #[test]
    fn stencil_uses_multiple_transactions_per_warp() {
        // The plane-stride load touches a different 128 B segment than the
        // unit-stride load for every warp.
        let k = stencil3d_like(&tiny());
        let mix = k.program().mix();
        assert!(mix.global_mem >= 5);
    }
}
