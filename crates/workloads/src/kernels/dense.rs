//! Dense compute kernels: clustering, tiled matrix multiply, lattice
//! Boltzmann streaming and stream clustering. `sgemm` and `lbm` are the
//! suite's capacity-limited members (shared-memory- and register-hungry
//! respectively); the other two are scheduling-limited.

use super::util::{rand_floats, rng};
use crate::suite::Scale;
use vt_isa::op::{Operand, Sreg};
use vt_isa::{Kernel, KernelBuilder};

/// `kmeans`-like: each thread classifies one 4-dimensional point against
/// 8 centroids with FMA distance accumulation. Centroid loads broadcast
/// (L1-friendly); point loads stream.
pub fn kmeans_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 64u32;
    let n = ctas * threads;
    let dims = 4u32;
    let k = 8u32;
    let table_words = 8192u32; // 32 KiB of centroid replicas: misses L1, hits L2
    let mut r = rng(0x0004_3a15);
    let mut b = KernelBuilder::new("kmeans");
    let points = b.alloc_global_init(&rand_floats(&mut r, (n * dims) as usize));
    let centroids = b.alloc_global_init(&rand_floats(&mut r, table_words as usize));
    let out = b.alloc_global(n as usize);

    let gid = b.reg();
    let poff = b.reg();
    let best = b.reg();
    let besti = b.reg();
    let distv = b.reg();
    let tmp = b.reg();
    let p = b.reg();
    let cv = b.reg();
    let c = b.reg();
    let d = b.reg();
    let pred = b.reg();
    b.global_thread_id(gid);
    b.mul(poff, Operand::Reg(gid), Operand::Imm(dims * 4));
    b.mov(best, Operand::fimm(f32::MAX));
    b.mov(besti, Operand::Imm(0));
    b.for_range(c, Operand::Imm(0), Operand::Imm(k), 1, |b, c| {
        b.mov(distv, Operand::Imm(0));
        b.for_range(d, Operand::Imm(0), Operand::Imm(dims), 1, |b, d| {
            b.shl(tmp, Operand::Reg(d), Operand::Imm(2));
            b.add(tmp, Operand::Reg(tmp), Operand::Reg(poff));
            b.ld_global(p, Operand::Reg(tmp), points as i32);
            // Centroid replica chosen per (CTA, c, d): warp-uniform (one
            // broadcast transaction) but spread across the 32 KiB table so
            // the L1 cannot hold it and every access is an L2 round trip.
            let t2 = b.reg();
            b.mad(tmp, Operand::Reg(c), Operand::Imm(dims), Operand::Reg(d));
            b.mad(
                tmp,
                Operand::Reg(tmp),
                Operand::Imm(509),
                Operand::Sreg(Sreg::CtaId),
            );
            b.mul(t2, Operand::Reg(tmp), Operand::Imm(37));
            b.and_(t2, Operand::Reg(t2), Operand::Imm(table_words - 1));
            b.shl(t2, Operand::Reg(t2), Operand::Imm(2));
            b.ld_global(cv, Operand::Reg(t2), centroids as i32);
            b.fsub(p, Operand::Reg(p), Operand::Reg(cv));
            b.ffma(distv, Operand::Reg(p), Operand::Reg(p), Operand::Reg(distv));
        });
        b.fset_lt(pred, Operand::Reg(distv), Operand::Reg(best));
        b.if_(Operand::Reg(pred), |b| {
            b.fmul(best, Operand::Reg(distv), Operand::fimm(1.0));
            b.mov(besti, Operand::Reg(c));
        });
    });
    b.shl(tmp, Operand::Reg(gid), Operand::Imm(2));
    b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(besti));
    b.pad_regs(18);
    b.build(ctas, threads).expect("kmeans kernel is valid")
}

/// `sgemm`-like: shared-memory-tiled multiply-accumulate. The 8 KiB tile
/// footprint makes it **shared-memory capacity limited** (6 CTAs/SM on
/// the default 48 KiB scratchpad), so Virtual Thread has no headroom.
pub fn sgemm_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 128u32;
    let n = ctas * threads;
    let mut r = rng(0x56e3);
    let mut b = KernelBuilder::new("sgemm");
    let a_mat = b.alloc_global_init(&rand_floats(&mut r, (n * scale.iters) as usize));
    let out = b.alloc_global(n as usize);
    let tile = b.alloc_shared(threads);
    b.pad_smem(8 * 1024);

    let gid = b.reg();
    let tid4 = b.reg();
    let acc = b.reg();
    let a = b.reg();
    let x = b.reg();
    let t = b.reg();
    let j = b.reg();
    let tmp = b.reg();
    b.global_thread_id(gid);
    b.shl(tid4, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
    b.mov(acc, Operand::Imm(0));
    b.for_range(t, Operand::Imm(0), Operand::Imm(scale.iters), 1, |b, t| {
        // Stage one coalesced tile into shared memory.
        b.mad(tmp, Operand::Reg(t), Operand::Imm(n), Operand::Reg(gid));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_global(a, Operand::Reg(tmp), a_mat as i32);
        b.st_shared(Operand::Reg(tid4), tile as i32, Operand::Reg(a));
        b.bar();
        // Inner product over the staged tile.
        b.for_range(j, Operand::Imm(0), Operand::Imm(8), 1, |b, j| {
            b.add(tmp, Operand::Sreg(Sreg::Tid), Operand::Reg(j));
            b.and_(tmp, Operand::Reg(tmp), Operand::Imm(threads - 1));
            b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
            b.ld_shared(x, Operand::Reg(tmp), tile as i32);
            b.ffma(acc, Operand::Reg(x), Operand::Reg(a), Operand::Reg(acc));
        });
        b.bar();
    });
    b.shl(tmp, Operand::Reg(gid), Operand::Imm(2));
    b.st_global(Operand::Reg(tmp), out as i32, Operand::Reg(acc));
    b.pad_regs(32);
    b.build(ctas, threads).expect("sgemm kernel is valid")
}

/// `lbm`-like: lattice-Boltzmann streaming with very high register
/// pressure (48 registers/thread): **register capacity limited** (5
/// CTAs/SM), the other flat-under-VT population member.
pub fn lbm_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 128u32;
    let n = ctas * threads;
    let dirs = 8u32;
    let mut r = rng(0x1b33);
    let mut b = KernelBuilder::new("lbm");
    let cells = b.alloc_global_init(&rand_floats(&mut r, (n * dirs) as usize));
    let out = b.alloc_global((n * dirs) as usize);

    let gid = b.reg();
    let base = b.reg();
    let acc = b.reg();
    let tmp = b.reg();
    // One architectural register per lattice direction keeps the whole
    // distribution in flight, like the real kernel.
    let f: Vec<_> = (0..dirs).map(|_| b.reg()).collect();
    b.global_thread_id(gid);
    b.mul(base, Operand::Reg(gid), Operand::Imm(dirs * 4));
    b.mov(acc, Operand::Imm(0));
    for (d, fd) in f.iter().enumerate() {
        b.ld_global(*fd, Operand::Reg(base), (cells + 4 * d as u32) as i32);
        b.fadd(acc, Operand::Reg(acc), Operand::Reg(*fd));
    }
    // Collision: relax each direction toward the mean.
    b.fmul(tmp, Operand::Reg(acc), Operand::fimm(1.0 / 8.0));
    for (d, fd) in f.iter().enumerate() {
        b.fsub(*fd, Operand::Reg(*fd), Operand::Reg(tmp));
        b.fmul(*fd, Operand::Reg(*fd), Operand::fimm(0.9));
        b.fadd(*fd, Operand::Reg(*fd), Operand::Reg(tmp));
        b.st_global(
            Operand::Reg(base),
            (out + 4 * d as u32) as i32,
            Operand::Reg(*fd),
        );
    }
    b.pad_regs(48);
    b.build(ctas, threads).expect("lbm kernel is valid")
}

/// `streamcluster`-like: repeated distance evaluations against a 64 KiB
/// centre table. The table is too big for the L1 but L2-resident, so every
/// pass is an L2-latency-bound round trip with almost no DRAM bandwidth —
/// exactly the stall profile extra TLP hides. 64-thread CTAs and tiny
/// register footprints make it the most scheduling-limited kernel in the
/// suite.
pub fn streamcluster_like(scale: &Scale) -> Kernel {
    let ctas = scale.ctas;
    let threads = 64u32;
    let n = ctas * threads;
    let table_lines = 512u32; // 512 x 128 B = 64 KiB of centres
    let mut r = rng(0x5c77);
    let mut b = KernelBuilder::new("streamcluster");
    let table = b.alloc_global_init(&rand_floats(&mut r, (table_lines * 32) as usize));
    let out = b.alloc_global(n as usize);

    let gid = b.reg();
    let acc = b.reg();
    let v = b.reg();
    let i = b.reg();
    let base = b.reg();
    let off = b.reg();
    b.global_thread_id(gid);
    b.mov(acc, Operand::Imm(0));
    // Warp-uniform centre index: one coalesced transaction per access,
    // pseudo-randomly spread over the whole table.
    b.mad(
        base,
        Operand::Sreg(Sreg::CtaId),
        Operand::Imm(2),
        Operand::Sreg(Sreg::WarpId),
    );
    b.for_range(
        i,
        Operand::Imm(0),
        Operand::Imm(scale.iters * 2),
        1,
        |b, i| {
            let line = b.reg();
            b.mad(line, Operand::Reg(i), Operand::Imm(97), Operand::Reg(base));
            b.mul(line, Operand::Reg(line), Operand::Imm(53));
            b.and_(line, Operand::Reg(line), Operand::Imm(table_lines - 1));
            b.shl(line, Operand::Reg(line), Operand::Imm(7));
            b.shl(off, Operand::Sreg(Sreg::Lane), Operand::Imm(2));
            b.add(off, Operand::Reg(off), Operand::Reg(line));
            b.ld_global(v, Operand::Reg(off), table as i32);
            b.ffma(acc, Operand::Reg(v), Operand::Reg(v), Operand::Reg(acc));
        },
    );
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.st_global(Operand::Reg(off), out as i32, Operand::Reg(acc));
    // Tightened from 10 after the static analyzer confirmed only 8
    // registers are ever referenced (occupancy stays CTA-slot-limited).
    b.pad_regs(8);
    b.build(ctas, threads)
        .expect("streamcluster kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_core::{occupancy, CoreConfig, Limiter};
    use vt_isa::interp::Interpreter;

    fn tiny() -> Scale {
        Scale { ctas: 4, iters: 2 }
    }

    #[test]
    fn kmeans_runs_and_is_scheduling_limited() {
        let k = kmeans_like(&tiny());
        Interpreter::new(&k).unwrap().run().unwrap();
        let occ = occupancy::analyze(&CoreConfig::default(), &k);
        assert!(occ.limiter.is_scheduling());
    }

    #[test]
    fn sgemm_is_smem_capacity_limited() {
        let k = sgemm_like(&tiny());
        Interpreter::new(&k).unwrap().run().unwrap();
        let occ = occupancy::analyze(&CoreConfig::default(), &k);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
        assert!(
            (occ.virtualization_headroom() - 1.0).abs() < 1e-9,
            "no VT headroom"
        );
    }

    #[test]
    fn lbm_is_register_capacity_limited() {
        let k = lbm_like(&tiny());
        Interpreter::new(&k).unwrap().run().unwrap();
        let occ = occupancy::analyze(&CoreConfig::default(), &k);
        assert_eq!(occ.limiter, Limiter::Registers);
        assert_eq!(k.regs_per_thread(), 48);
    }

    #[test]
    fn streamcluster_has_large_vt_headroom() {
        let k = streamcluster_like(&tiny());
        Interpreter::new(&k).unwrap().run().unwrap();
        let occ = occupancy::analyze(&CoreConfig::default(), &k);
        assert_eq!(occ.limiter, Limiter::CtaSlots);
        assert!(occ.virtualization_headroom() >= 3.0);
    }
}
