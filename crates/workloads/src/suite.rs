//! The assembled suite with per-workload metadata: the 14 core kernels
//! mirroring Rodinia/Parboil benchmarks ([`suite`]), the six-family
//! workload zoo ([`zoo`]) and their union ([`full_suite`]).

use crate::kernels::{dense, irregular, stencil, sync};
use crate::zoo::{
    BankStormParams, DivergentTreeParams, FrontierParams, HotBinsParams, RegStairsParams,
    RelayParams,
};
use vt_isa::Kernel;

/// Problem-size knob shared by every workload: grid size and inner
/// iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// CTAs in the grid.
    pub ctas: u32,
    /// Inner loop trip count (time steps, tiles, samples per thread…).
    pub iters: u32,
}

impl Scale {
    /// Minimal scale for unit/integration tests.
    pub fn test() -> Scale {
        Scale { ctas: 6, iters: 2 }
    }

    /// Small scale for quick experiments (seconds per run).
    pub fn small() -> Scale {
        Scale { ctas: 90, iters: 4 }
    }

    /// The scale the experiment harness uses to regenerate the paper's
    /// figures: enough waves of CTAs per SM for steady-state behaviour.
    pub fn paper() -> Scale {
        Scale {
            ctas: 360,
            iters: 8,
        }
    }
}

/// Which limit family binds a workload's baseline occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimiterClass {
    /// CTA or warp slots bind first — Virtual Thread's target population.
    Scheduling,
    /// Registers or shared memory bind first — VT must not hurt these.
    Capacity,
}

/// One benchmark of the suite.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in tables and figures.
    pub name: &'static str,
    /// The benchmark this kernel's footprint and behaviour mirror.
    pub mirrors: &'static str,
    /// Expected limiter class on the default (Fermi-like) configuration.
    pub class: LimiterClass,
    /// The kernel itself.
    pub kernel: Kernel,
}

/// Builds the full suite at the given scale.
///
/// Eleven workloads are scheduling-limited and three capacity-limited,
/// matching the paper's observation that the scheduling limit binds most
/// general-purpose GPU applications.
pub fn suite(scale: &Scale) -> Vec<Workload> {
    use LimiterClass::{Capacity, Scheduling};
    vec![
        Workload {
            name: "bfs",
            mirrors: "Rodinia bfs (irregular graph gather)",
            class: Scheduling,
            kernel: irregular::bfs_like(scale),
        },
        Workload {
            name: "kmeans",
            mirrors: "Rodinia kmeans (point classification)",
            class: Scheduling,
            kernel: dense::kmeans_like(scale),
        },
        Workload {
            name: "hotspot",
            mirrors: "Rodinia hotspot (tiled thermal stencil)",
            class: Scheduling,
            kernel: stencil::hotspot_like(scale),
        },
        Workload {
            name: "sgemm",
            mirrors: "Parboil sgemm (shared-memory tiled GEMM)",
            class: Capacity,
            kernel: dense::sgemm_like(scale),
        },
        Workload {
            name: "spmv",
            mirrors: "Parboil spmv (padded-CSR gather)",
            class: Scheduling,
            kernel: irregular::spmv_like(scale),
        },
        Workload {
            name: "stencil",
            mirrors: "Parboil stencil (3-D 4-point stencil)",
            class: Scheduling,
            kernel: stencil::stencil3d_like(scale),
        },
        Workload {
            name: "pathfinder",
            mirrors: "Rodinia pathfinder (DP wavefront)",
            class: Scheduling,
            kernel: stencil::pathfinder_like(scale),
        },
        Workload {
            name: "backprop",
            mirrors: "Rodinia backprop (layer reduction)",
            class: Scheduling,
            kernel: sync::backprop_like(scale),
        },
        Workload {
            name: "histo",
            mirrors: "Parboil histo (atomic histogram)",
            class: Scheduling,
            kernel: irregular::histo_like(scale),
        },
        Workload {
            name: "lbm",
            mirrors: "Parboil lbm (register-heavy streaming)",
            class: Capacity,
            kernel: dense::lbm_like(scale),
        },
        Workload {
            name: "nw",
            mirrors: "Rodinia nw (single-warp wavefront CTAs)",
            class: Scheduling,
            kernel: sync::nw_like(scale),
        },
        Workload {
            name: "srad",
            mirrors: "Rodinia srad (diffusion, SFU-heavy, high regs)",
            class: Capacity,
            kernel: stencil::srad_like(scale),
        },
        Workload {
            name: "reduction",
            mirrors: "CUDA SDK reduction (tree + atomic)",
            class: Scheduling,
            kernel: sync::reduction_like(scale),
        },
        Workload {
            name: "streamcluster",
            mirrors: "Rodinia streamcluster (distance streaming)",
            class: Scheduling,
            kernel: dense::streamcluster_like(scale),
        },
    ]
}

/// The six-family workload zoo at the given scale: one canonical preset
/// per parameterised scenario family in [`crate::zoo`].
///
/// Four families are scheduling-limited (divergence, atomic contention,
/// barrier pipelines, irregular frontiers) and two capacity-limited
/// (register staircases, shared-memory bank conflicts), extending the
/// core suite's 11/3 split to 15/5 overall.
pub fn zoo(scale: &Scale) -> Vec<Workload> {
    use LimiterClass::{Capacity, Scheduling};
    vec![
        Workload {
            name: "divtree",
            mirrors: "data-dependent branch trees (ray/MC divergence)",
            class: Scheduling,
            kernel: DivergentTreeParams {
                ctas: scale.ctas,
                iters: scale.iters,
                ..DivergentTreeParams::default()
            }
            .build(),
        },
        Workload {
            name: "hotbins",
            mirrors: "contended atomic histogram (few hot bins)",
            class: Scheduling,
            kernel: HotBinsParams {
                ctas: scale.ctas,
                iters: scale.iters,
                ..HotBinsParams::default()
            }
            .build(),
        },
        Workload {
            name: "relay",
            mirrors: "producer-consumer warp pipeline (barrier relay)",
            class: Scheduling,
            kernel: RelayParams {
                ctas: scale.ctas,
                iters: scale.iters,
                ..RelayParams::default()
            }
            .build(),
        },
        Workload {
            name: "frontier",
            mirrors: "sparse graph frontier push (variable degree)",
            class: Scheduling,
            kernel: FrontierParams {
                ctas: scale.ctas,
                iters: scale.iters,
                ..FrontierParams::default()
            }
            .build(),
        },
        Workload {
            name: "regstairs",
            mirrors: "register-pressure staircase (deep live chains)",
            class: Capacity,
            kernel: RegStairsParams {
                ctas: scale.ctas,
                iters: scale.iters,
                ..RegStairsParams::default()
            }
            .build(),
        },
        Workload {
            name: "bankstorm",
            mirrors: "shared-memory bank-conflict sweep",
            class: Capacity,
            kernel: BankStormParams {
                ctas: scale.ctas,
                iters: scale.iters,
                ..BankStormParams::default()
            }
            .build(),
        },
    ]
}

/// The grown suite: the 14 core kernels plus the six-family zoo. This is
/// what the invariant gates (goldens, CPI oracle, differential tests,
/// `vtbench`, `vtlint --suite`) iterate.
pub fn full_suite(scale: &Scale) -> Vec<Workload> {
    let mut all = suite(scale);
    all.extend(zoo(scale));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_core::{occupancy, CoreConfig};

    #[test]
    fn suite_has_fourteen_distinct_workloads() {
        let s = suite(&Scale::test());
        assert_eq!(s.len(), 14);
        for (i, a) in s.iter().enumerate() {
            for b in &s[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn full_suite_is_core_plus_zoo_with_distinct_names() {
        let s = full_suite(&Scale::test());
        assert_eq!(s.len(), 14 + 6);
        assert_eq!(zoo(&Scale::test()).len(), 6);
        for (i, a) in s.iter().enumerate() {
            for b in &s[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn declared_limiter_classes_match_occupancy_analysis() {
        let core = CoreConfig::default();
        for w in full_suite(&Scale::test()) {
            let occ = occupancy::analyze(&core, &w.kernel);
            let is_sched = occ.limiter.is_scheduling();
            match w.class {
                LimiterClass::Scheduling => {
                    assert!(
                        is_sched,
                        "{} declared scheduling but is {:?}",
                        w.name, occ.limiter
                    )
                }
                LimiterClass::Capacity => {
                    assert!(
                        !is_sched,
                        "{} declared capacity but is {:?}",
                        w.name, occ.limiter
                    )
                }
            }
        }
    }

    #[test]
    fn majority_is_scheduling_limited_like_the_paper_claims() {
        let s = full_suite(&Scale::test());
        let sched = s
            .iter()
            .filter(|w| w.class == LimiterClass::Scheduling)
            .count();
        assert!(
            sched * 2 > s.len(),
            "{sched}/{} scheduling-limited",
            s.len()
        );
    }

    #[test]
    fn scale_changes_grid_size_only() {
        let a = full_suite(&Scale { ctas: 4, iters: 2 });
        let b = full_suite(&Scale { ctas: 8, iters: 2 });
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.kernel.threads_per_cta(), wb.kernel.threads_per_cta());
            assert_eq!(wa.kernel.regs_per_thread(), wb.kernel.regs_per_thread());
            assert_eq!(wb.kernel.num_ctas(), 8);
        }
    }
}
