//! The assembled 14-kernel suite with per-workload metadata.

use crate::kernels::{dense, irregular, stencil, sync};
use vt_isa::Kernel;

/// Problem-size knob shared by every workload: grid size and inner
/// iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// CTAs in the grid.
    pub ctas: u32,
    /// Inner loop trip count (time steps, tiles, samples per thread…).
    pub iters: u32,
}

impl Scale {
    /// Minimal scale for unit/integration tests.
    pub fn test() -> Scale {
        Scale { ctas: 6, iters: 2 }
    }

    /// Small scale for quick experiments (seconds per run).
    pub fn small() -> Scale {
        Scale { ctas: 90, iters: 4 }
    }

    /// The scale the experiment harness uses to regenerate the paper's
    /// figures: enough waves of CTAs per SM for steady-state behaviour.
    pub fn paper() -> Scale {
        Scale {
            ctas: 360,
            iters: 8,
        }
    }
}

/// Which limit family binds a workload's baseline occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimiterClass {
    /// CTA or warp slots bind first — Virtual Thread's target population.
    Scheduling,
    /// Registers or shared memory bind first — VT must not hurt these.
    Capacity,
}

/// One benchmark of the suite.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in tables and figures.
    pub name: &'static str,
    /// The benchmark this kernel's footprint and behaviour mirror.
    pub mirrors: &'static str,
    /// Expected limiter class on the default (Fermi-like) configuration.
    pub class: LimiterClass,
    /// The kernel itself.
    pub kernel: Kernel,
}

/// Builds the full suite at the given scale.
///
/// Eleven workloads are scheduling-limited and three capacity-limited,
/// matching the paper's observation that the scheduling limit binds most
/// general-purpose GPU applications.
pub fn suite(scale: &Scale) -> Vec<Workload> {
    use LimiterClass::{Capacity, Scheduling};
    vec![
        Workload {
            name: "bfs",
            mirrors: "Rodinia bfs (irregular graph gather)",
            class: Scheduling,
            kernel: irregular::bfs_like(scale),
        },
        Workload {
            name: "kmeans",
            mirrors: "Rodinia kmeans (point classification)",
            class: Scheduling,
            kernel: dense::kmeans_like(scale),
        },
        Workload {
            name: "hotspot",
            mirrors: "Rodinia hotspot (tiled thermal stencil)",
            class: Scheduling,
            kernel: stencil::hotspot_like(scale),
        },
        Workload {
            name: "sgemm",
            mirrors: "Parboil sgemm (shared-memory tiled GEMM)",
            class: Capacity,
            kernel: dense::sgemm_like(scale),
        },
        Workload {
            name: "spmv",
            mirrors: "Parboil spmv (padded-CSR gather)",
            class: Scheduling,
            kernel: irregular::spmv_like(scale),
        },
        Workload {
            name: "stencil",
            mirrors: "Parboil stencil (3-D 4-point stencil)",
            class: Scheduling,
            kernel: stencil::stencil3d_like(scale),
        },
        Workload {
            name: "pathfinder",
            mirrors: "Rodinia pathfinder (DP wavefront)",
            class: Scheduling,
            kernel: stencil::pathfinder_like(scale),
        },
        Workload {
            name: "backprop",
            mirrors: "Rodinia backprop (layer reduction)",
            class: Scheduling,
            kernel: sync::backprop_like(scale),
        },
        Workload {
            name: "histo",
            mirrors: "Parboil histo (atomic histogram)",
            class: Scheduling,
            kernel: irregular::histo_like(scale),
        },
        Workload {
            name: "lbm",
            mirrors: "Parboil lbm (register-heavy streaming)",
            class: Capacity,
            kernel: dense::lbm_like(scale),
        },
        Workload {
            name: "nw",
            mirrors: "Rodinia nw (single-warp wavefront CTAs)",
            class: Scheduling,
            kernel: sync::nw_like(scale),
        },
        Workload {
            name: "srad",
            mirrors: "Rodinia srad (diffusion, SFU-heavy, high regs)",
            class: Capacity,
            kernel: stencil::srad_like(scale),
        },
        Workload {
            name: "reduction",
            mirrors: "CUDA SDK reduction (tree + atomic)",
            class: Scheduling,
            kernel: sync::reduction_like(scale),
        },
        Workload {
            name: "streamcluster",
            mirrors: "Rodinia streamcluster (distance streaming)",
            class: Scheduling,
            kernel: dense::streamcluster_like(scale),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_core::{occupancy, CoreConfig};

    #[test]
    fn suite_has_fourteen_distinct_workloads() {
        let s = suite(&Scale::test());
        assert_eq!(s.len(), 14);
        for (i, a) in s.iter().enumerate() {
            for b in &s[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn declared_limiter_classes_match_occupancy_analysis() {
        let core = CoreConfig::default();
        for w in suite(&Scale::test()) {
            let occ = occupancy::analyze(&core, &w.kernel);
            let is_sched = occ.limiter.is_scheduling();
            match w.class {
                LimiterClass::Scheduling => {
                    assert!(
                        is_sched,
                        "{} declared scheduling but is {:?}",
                        w.name, occ.limiter
                    )
                }
                LimiterClass::Capacity => {
                    assert!(
                        !is_sched,
                        "{} declared capacity but is {:?}",
                        w.name, occ.limiter
                    )
                }
            }
        }
    }

    #[test]
    fn majority_is_scheduling_limited_like_the_paper_claims() {
        let s = suite(&Scale::test());
        let sched = s
            .iter()
            .filter(|w| w.class == LimiterClass::Scheduling)
            .count();
        assert!(
            sched * 2 > s.len(),
            "{sched}/{} scheduling-limited",
            s.len()
        );
    }

    #[test]
    fn scale_changes_grid_size_only() {
        let a = suite(&Scale { ctas: 4, iters: 2 });
        let b = suite(&Scale { ctas: 8, iters: 2 });
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.kernel.threads_per_cta(), wb.kernel.threads_per_cta());
            assert_eq!(wa.kernel.regs_per_thread(), wb.kernel.regs_per_thread());
            assert_eq!(wb.kernel.num_ctas(), 8);
        }
    }
}
