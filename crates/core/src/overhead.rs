//! Hardware-overhead model of the Virtual Thread context buffer — the
//! storage added per SM to hold the scheduling state of inactive CTAs
//! (the paper's low-complexity claim, its overhead table).

use crate::arch::VtParams;
use vt_sim::CoreConfig;

/// Per-SM storage the VT context buffer adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadBreakdown {
    /// Warp contexts the buffer must hold (virtual warps beyond the
    /// hardware warp slots).
    pub buffered_warp_contexts: u32,
    /// Bytes for saved PCs.
    pub pc_bytes: u32,
    /// Bytes for saved SIMT stacks.
    pub simt_stack_bytes: u32,
    /// Bytes for saved scoreboard state.
    pub scoreboard_bytes: u32,
    /// Bytes of CTA-level bookkeeping (phase, barrier count, pending-load
    /// count, base pointers).
    pub cta_metadata_bytes: u32,
}

impl OverheadBreakdown {
    /// Total context-buffer bytes per SM.
    pub fn total_bytes(&self) -> u32 {
        self.pc_bytes + self.simt_stack_bytes + self.scoreboard_bytes + self.cta_metadata_bytes
    }

    /// Context buffer as a fraction of the SM's register file — the
    /// paper's "small relative to on-chip memory" argument.
    pub fn fraction_of_regfile(&self, core: &CoreConfig) -> f64 {
        f64::from(self.total_bytes()) / f64::from(core.regfile_bytes)
    }
}

/// Bytes of CTA-level bookkeeping per virtual CTA.
const CTA_METADATA_BYTES: u32 = 16;

/// Sizes the context buffer for a design that virtualises up to
/// `virtual_ctas_per_sm` CTAs of `warps_per_cta` warps each.
///
/// Only warps *beyond* the hardware warp slots need buffered context —
/// active CTAs keep their state in the existing scheduling structures.
pub fn context_buffer(
    core: &CoreConfig,
    params: &VtParams,
    virtual_ctas_per_sm: u32,
    warps_per_cta: u32,
) -> OverheadBreakdown {
    let virtual_warps = virtual_ctas_per_sm * warps_per_cta;
    let buffered = virtual_warps.saturating_sub(core.max_warps_per_sm);
    OverheadBreakdown {
        buffered_warp_contexts: buffered,
        pc_bytes: buffered * 4,
        simt_stack_bytes: buffered * params.stack_entries_per_warp * 8,
        scoreboard_bytes: buffered * params.scoreboard_bytes_per_warp,
        cta_metadata_bytes: virtual_ctas_per_sm.saturating_sub(core.max_ctas_per_sm)
            * CTA_METADATA_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_overhead_when_within_scheduling_limit() {
        let core = CoreConfig::default();
        let b = context_buffer(&core, &VtParams::default(), 8, 2);
        assert_eq!(b.buffered_warp_contexts, 0);
        assert_eq!(b.total_bytes(), 0);
    }

    #[test]
    fn overhead_is_kilobytes_not_register_file() {
        let core = CoreConfig::default();
        // 32 virtual CTAs of 2 warps = 64 warps; 16 beyond the 48 slots.
        let b = context_buffer(&core, &VtParams::default(), 32, 2);
        assert_eq!(b.buffered_warp_contexts, 16);
        assert!(b.total_bytes() > 0);
        assert!(
            b.fraction_of_regfile(&core) < 0.05,
            "context buffer should be tiny vs the register file, got {}",
            b.fraction_of_regfile(&core)
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let core = CoreConfig::default();
        let b = context_buffer(&core, &VtParams::default(), 48, 2);
        assert_eq!(
            b.total_bytes(),
            b.pc_bytes + b.simt_stack_bytes + b.scoreboard_bytes + b.cta_metadata_bytes
        );
    }

    #[test]
    fn deeper_stacks_cost_more() {
        let core = CoreConfig::default();
        let small = context_buffer(
            &core,
            &VtParams {
                stack_entries_per_warp: 4,
                ..VtParams::default()
            },
            32,
            2,
        );
        let big = context_buffer(
            &core,
            &VtParams {
                stack_entries_per_warp: 32,
                ..VtParams::default()
            },
            32,
            2,
        );
        assert!(big.simt_stack_bytes > small.simt_stack_bytes);
    }
}
