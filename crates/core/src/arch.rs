//! The four architectures the paper compares, and how each lowers to the
//! simulator's CTA-residency mechanism.

use vt_isa::Kernel;
use vt_mem::MemConfig;
use vt_sim::config::ThrottleConfig;
use vt_sim::{ActivePolicy, AdmissionPolicy, CoreConfig, ResidencyConfig, SwapConfig, SwapTrigger};

/// Parameters of the Virtual Thread architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VtParams {
    /// Maximum virtual (resident) CTAs per SM, bounding the context
    /// buffer. `None` lets capacity alone decide, the paper's default
    /// design point.
    pub max_virtual_ctas: Option<u32>,
    /// Context-switch trigger policy.
    pub trigger: SwapTrigger,
    /// Context-buffer port width: 32-bit words moved per cycle during a
    /// save or restore.
    pub buffer_words_per_cycle: u32,
    /// SIMT-stack entries saved per warp (the stack's architected depth).
    pub stack_entries_per_warp: u32,
    /// Scoreboard bytes saved per warp.
    pub scoreboard_bytes_per_warp: u32,
    /// Optional cache-thrash feedback: suppress rotation while the L1 hit
    /// rate is collapsing (our extension for cache-sensitive kernels; not
    /// in the paper).
    pub adaptive_throttle: Option<ThrottleConfig>,
}

impl Default for VtParams {
    fn default() -> Self {
        VtParams {
            max_virtual_ctas: None,
            trigger: SwapTrigger::AllWarpsStalled,
            buffer_words_per_cycle: 32,
            stack_entries_per_warp: 16,
            scoreboard_bytes_per_warp: 8,
            adaptive_throttle: None,
        }
    }
}

impl VtParams {
    /// Bytes of scheduling state one warp contributes to a context switch:
    /// PC + SIMT stack (two words per entry: PC/RPC packed and mask) +
    /// scoreboard bits.
    pub fn context_bytes_per_warp(&self) -> u32 {
        4 + self.stack_entries_per_warp * 8 + self.scoreboard_bytes_per_warp
    }

    /// Cycles to save (or restore) one CTA's scheduling state through the
    /// context-buffer port.
    pub fn swap_cycles(&self, kernel: &Kernel) -> u32 {
        let words = kernel.warps_per_cta() * self.context_bytes_per_warp().div_ceil(4);
        words.div_ceil(self.buffer_words_per_cycle.max(1)).max(1)
    }
}

/// Parameters of the memory-hierarchy CTA-swap comparison point: the
/// conventional alternative that saves and restores the *full* CTA state
/// (registers and shared memory) through the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSwapParams {
    /// Maximum virtual CTAs per SM (same role as in [`VtParams`]).
    pub max_virtual_ctas: Option<u32>,
    /// Context-switch trigger policy.
    pub trigger: SwapTrigger,
    /// Sustained bytes per cycle the swap engine moves to/from memory.
    pub mem_bytes_per_cycle: u32,
    /// Fixed latency added per swap direction (request launch + DRAM
    /// round trip).
    pub base_latency: u32,
}

impl Default for MemSwapParams {
    fn default() -> Self {
        MemSwapParams {
            max_virtual_ctas: None,
            trigger: SwapTrigger::AllWarpsStalled,
            mem_bytes_per_cycle: 32,
            base_latency: 400,
        }
    }
}

impl MemSwapParams {
    /// Cycles to move one CTA's full state one way.
    pub fn swap_cycles(&self, kernel: &Kernel) -> u32 {
        let bytes = kernel.reg_bytes_per_cta() + kernel.smem_bytes_per_cta();
        self.base_latency + bytes.div_ceil(self.mem_bytes_per_cycle.max(1))
    }
}

/// The architecture being simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Architecture {
    /// Conventional GPU: CTAs admitted up to min(scheduling, capacity)
    /// limit, no context switching.
    Baseline,
    /// **The paper's proposal**: CTAs admitted up to the capacity limit;
    /// only a scheduling-limit-respecting subset is active; stalled active
    /// CTAs are context-switched against ready inactive ones, saving only
    /// scheduling state to an on-chip context buffer.
    VirtualThread(VtParams),
    /// Upper bound: scheduling structures scale with capacity for free —
    /// every resident CTA is active.
    Ideal,
    /// The conventional alternative: CTA-level context switching through
    /// the memory hierarchy, paying for the full register/shared-memory
    /// state on every swap.
    MemSwap(MemSwapParams),
}

impl Architecture {
    /// The paper's default VT design point.
    pub fn virtual_thread() -> Architecture {
        Architecture::VirtualThread(VtParams::default())
    }

    /// Short label used in tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            Architecture::Baseline => "baseline",
            Architecture::VirtualThread(_) => "vt",
            Architecture::Ideal => "ideal",
            Architecture::MemSwap(_) => "memswap",
        }
    }

    /// Lowers the architecture to the simulator's residency mechanism for
    /// a specific kernel (swap costs depend on the kernel's footprint).
    pub fn residency_for(
        &self,
        kernel: &Kernel,
        _core: &CoreConfig,
        _mem: &MemConfig,
    ) -> ResidencyConfig {
        match self {
            Architecture::Baseline => ResidencyConfig::baseline(),
            Architecture::Ideal => ResidencyConfig {
                admission: AdmissionPolicy::CapacityOnly {
                    max_resident_ctas: None,
                },
                active: ActivePolicy::Unlimited,
                swap: None,
            },
            Architecture::VirtualThread(p) => virtualized_residency(
                p.max_virtual_ctas,
                p.trigger,
                p.swap_cycles(kernel),
                p.adaptive_throttle,
            ),
            Architecture::MemSwap(p) => {
                virtualized_residency(p.max_virtual_ctas, p.trigger, p.swap_cycles(kernel), None)
            }
        }
    }
}

/// The shared lowering of both context-switching architectures: admit by
/// capacity, activate within the scheduling limit, swap symmetrically at
/// `swap_cycles` per direction.
fn virtualized_residency(
    max_virtual_ctas: Option<u32>,
    trigger: SwapTrigger,
    swap_cycles: u32,
    throttle: Option<ThrottleConfig>,
) -> ResidencyConfig {
    ResidencyConfig {
        admission: AdmissionPolicy::CapacityOnly {
            max_resident_ctas: max_virtual_ctas,
        },
        active: ActivePolicy::SchedulingLimit,
        swap: Some(SwapConfig {
            trigger,
            save_cycles: swap_cycles,
            restore_cycles: swap_cycles,
            fresh_activation_cycles: 1,
            throttle,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_isa::KernelBuilder;

    fn kernel(threads: u32, regs: u16, smem: u32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        b.pad_regs(regs);
        b.pad_smem(smem);
        b.exit();
        b.build(4, threads).unwrap()
    }

    #[test]
    fn vt_swap_cost_is_tens_of_cycles() {
        let p = VtParams::default();
        let k = kernel(64, 16, 0); // 2 warps
        let c = p.swap_cycles(&k);
        assert!((1..100).contains(&c), "VT swap should be cheap, got {c}");
    }

    #[test]
    fn memswap_cost_is_orders_of_magnitude_higher() {
        let k = kernel(64, 16, 2048);
        let vt = VtParams::default().swap_cycles(&k);
        let ms = MemSwapParams::default().swap_cycles(&k);
        assert!(
            ms > 20 * vt,
            "full-state swap ({ms}) should dwarf scheduling-state swap ({vt})"
        );
    }

    #[test]
    fn lowering_matches_paper_design_points() {
        let core = CoreConfig::default();
        let mem = MemConfig::default();
        let k = kernel(64, 16, 0);

        let b = Architecture::Baseline.residency_for(&k, &core, &mem);
        assert_eq!(b.admission, AdmissionPolicy::SchedulingAndCapacity);
        assert!(b.swap.is_none());

        let i = Architecture::Ideal.residency_for(&k, &core, &mem);
        assert_eq!(i.active, ActivePolicy::Unlimited);

        let v = Architecture::virtual_thread().residency_for(&k, &core, &mem);
        assert_eq!(v.active, ActivePolicy::SchedulingLimit);
        let swap = v.swap.expect("VT swaps");
        assert_eq!(swap.trigger, SwapTrigger::AllWarpsStalled);
        assert!(swap.save_cycles < 100);

        let m = Architecture::MemSwap(MemSwapParams::default()).residency_for(&k, &core, &mem);
        assert!(m.swap.expect("memswap swaps").save_cycles > swap.save_cycles);
    }

    #[test]
    fn labels_are_distinct() {
        let archs = [
            Architecture::Baseline,
            Architecture::virtual_thread(),
            Architecture::Ideal,
            Architecture::MemSwap(MemSwapParams::default()),
        ];
        for (i, a) in archs.iter().enumerate() {
            for b in &archs[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn context_bytes_scale_with_stack_budget() {
        let small = VtParams {
            stack_entries_per_warp: 4,
            ..VtParams::default()
        };
        let big = VtParams {
            stack_entries_per_warp: 32,
            ..VtParams::default()
        };
        assert!(big.context_bytes_per_warp() > small.context_bytes_per_warp());
    }
}
