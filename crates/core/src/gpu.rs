//! The public façade: configure an architecture, run kernels, read
//! reports.

use crate::arch::Architecture;
use vt_isa::kernel::MemImage;
use vt_isa::Kernel;
use vt_mem::MemConfig;
use vt_par::Pool;
use vt_sim::{
    check_launchable, occupancy, CoreConfig, GpuSim, LaunchError, OccupancyAnalysis,
    ResidencyConfig, RunBudget, RunStats, SimConfig, SimError,
};

/// Full configuration of a simulated GPU: hardware shape plus the CTA
/// architecture under study.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// SM/core parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// CTA architecture (Baseline / VirtualThread / Ideal / MemSwap).
    pub arch: Architecture,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            core: CoreConfig::default(),
            mem: MemConfig::default(),
            arch: Architecture::Baseline,
        }
    }
}

impl GpuConfig {
    /// A configuration running the given architecture with default
    /// hardware parameters.
    pub fn with_arch(arch: Architecture) -> GpuConfig {
        GpuConfig {
            arch,
            ..GpuConfig::default()
        }
    }
}

/// The outcome of a kernel run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Kernel name.
    pub kernel: String,
    /// Architecture that produced this report.
    pub arch: Architecture,
    /// The residency policy the architecture lowered to for this kernel.
    pub residency: ResidencyConfig,
    /// Timing and utilisation statistics.
    pub stats: RunStats,
    /// Final functional memory image.
    pub mem_image: MemImage,
}

impl Report {
    /// Thread-instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// This run's speedup over a baseline run of the same kernel
    /// (cycles_baseline / cycles_this).
    pub fn speedup_over(&self, baseline: &Report) -> f64 {
        if self.stats.cycles == 0 {
            return 0.0;
        }
        baseline.stats.cycles as f64 / self.stats.cycles as f64
    }
}

/// A simulated GPU under one [`GpuConfig`].
///
/// # Example
///
/// Compare the Virtual Thread architecture against the baseline on one
/// kernel:
///
/// ```
/// use vt_core::{Architecture, Gpu, GpuConfig};
/// use vt_isa::KernelBuilder;
/// use vt_isa::op::Operand;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = KernelBuilder::new("stream");
/// let data = b.alloc_global(4096);
/// let gid = b.reg();
/// let v = b.reg();
/// b.global_thread_id(gid);
/// b.shl(gid, Operand::Reg(gid), Operand::Imm(2));
/// b.ld_global(v, Operand::Reg(gid), data as i32);
/// b.add(v, Operand::Reg(v), Operand::Imm(1));
/// b.st_global(Operand::Reg(gid), data as i32, Operand::Reg(v));
/// let kernel = b.build(64, 64)?;
///
/// let mut cfg = GpuConfig::default();
/// cfg.core.num_sms = 2; // keep the doctest quick
/// let base = Gpu::new(cfg.clone()).run(&kernel)?;
/// cfg.arch = Architecture::virtual_thread();
/// let vt = Gpu::new(cfg).run(&kernel)?;
/// assert_eq!(vt.mem_image, base.mem_image, "same functional result");
/// assert!(vt.speedup_over(&base) > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    cfg: GpuConfig,
}

impl Gpu {
    /// A GPU under `cfg`.
    pub fn new(cfg: GpuConfig) -> Gpu {
        Gpu { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Whether `kernel` can launch at all on this hardware.
    ///
    /// # Errors
    ///
    /// Returns the violated resource as a [`LaunchError`].
    pub fn check(&self, kernel: &Kernel) -> Result<(), LaunchError> {
        check_launchable(&self.cfg.core, kernel)
    }

    /// Static occupancy/limiter analysis of `kernel` on this hardware
    /// (independent of the architecture).
    pub fn occupancy(&self, kernel: &Kernel) -> OccupancyAnalysis {
        occupancy::analyze(&self.cfg.core, kernel)
    }

    /// Runs `kernel` to completion under the configured architecture.
    ///
    /// This is the one-shot convenience; anything beyond a single
    /// untraced, unbudgeted run (pools, tracing, budgets, cancellation,
    /// chains, resume) goes through [`crate::Session`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on launch failure, a functional trap, or
    /// watchdog expiry.
    pub fn run(&self, kernel: &Kernel) -> Result<Report, SimError> {
        self.run_inner(kernel, None, &mut vt_trace::NullSink)
    }

    /// [`Gpu::run`] with the per-cycle SM phase sharded across `pool`'s
    /// workers. Results are bit-identical to [`Gpu::run`] at any thread
    /// count; `None` runs inline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on launch failure, a functional trap, or
    /// watchdog expiry.
    #[deprecated(
        since = "0.2.0",
        note = "use Session::with_pool + Session::run instead"
    )]
    pub fn run_on(&self, kernel: &Kernel, pool: Option<&Pool>) -> Result<Report, SimError> {
        self.run_inner(kernel, pool, &mut vt_trace::NullSink)
    }

    /// [`Gpu::run`] with an explicit trace sink receiving every simulation
    /// event; with [`vt_trace::NullSink`] the instrumentation compiles
    /// away.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on launch failure, a functional trap, or
    /// watchdog expiry.
    #[deprecated(
        since = "0.2.0",
        note = "use Session::with_sink + Session::run instead"
    )]
    pub fn run_traced<S: vt_trace::TraceSink>(
        &self,
        kernel: &Kernel,
        sink: &mut S,
    ) -> Result<Report, SimError> {
        self.run_inner(kernel, None, sink)
    }

    /// Tracing plus optional SM-level parallelism. Stats, traces and the
    /// final memory image are identical for every `pool` choice.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on launch failure, a functional trap, or
    /// watchdog expiry.
    #[deprecated(
        since = "0.2.0",
        note = "use Session::with_pool + Session::with_sink + Session::run instead"
    )]
    pub fn run_traced_on<S: vt_trace::TraceSink>(
        &self,
        kernel: &Kernel,
        pool: Option<&Pool>,
        sink: &mut S,
    ) -> Result<Report, SimError> {
        self.run_inner(kernel, pool, sink)
    }

    /// The shared single-launch body behind [`Gpu::run`] and the
    /// deprecated shims: lower the architecture to a residency policy and
    /// run the engine to completion.
    fn run_inner<S: vt_trace::TraceSink>(
        &self,
        kernel: &Kernel,
        pool: Option<&Pool>,
        sink: &mut S,
    ) -> Result<Report, SimError> {
        let residency = self
            .cfg
            .arch
            .residency_for(kernel, &self.cfg.core, &self.cfg.mem);
        let sim_cfg = SimConfig {
            core: self.cfg.core.clone(),
            mem: self.cfg.mem.clone(),
            residency,
        };
        let result = GpuSim::new(&sim_cfg, kernel)?
            .execute(pool, sink, &RunBudget::unlimited(), None)?
            .completed()?;
        Ok(Report {
            kernel: kernel.name().to_string(),
            arch: self.cfg.arch,
            residency,
            stats: result.stats,
            mem_image: result.mem_image,
        })
    }
}

/// Runs `kernel` under every listed architecture with shared hardware
/// parameters, returning reports in the same order.
///
/// # Errors
///
/// Fails on the first architecture whose run fails.
pub fn compare(
    core: &CoreConfig,
    mem: &MemConfig,
    archs: &[Architecture],
    kernel: &Kernel,
) -> Result<Vec<Report>, SimError> {
    archs
        .iter()
        .map(|&arch| {
            Gpu::new(GpuConfig {
                core: core.clone(),
                mem: mem.clone(),
                arch,
            })
            .run(kernel)
        })
        .collect()
}

/// Runs the full `kernels` × `archs` grid, fanning independent cells
/// across `pool`'s workers. Returns one result per cell in kernel-major
/// order (`kernels[0]` under every architecture, then `kernels[1]`, …),
/// regardless of which worker finished first — each cell is an isolated
/// simulation, so the grid is deterministic at any thread count.
///
/// Per-cell failures are reported in place rather than aborting the grid,
/// so a sweep can present partial results.
///
/// Deprecated shim: builds a [`crate::Session`] over a pool of the same
/// width (results are deterministic, so which pool instance runs the grid
/// is unobservable) and delegates to [`crate::Session::sweep`].
#[deprecated(since = "0.2.0", note = "use Session::sweep instead")]
pub fn run_matrix(
    pool: &Pool,
    core: &CoreConfig,
    mem: &MemConfig,
    archs: &[Architecture],
    kernels: &[Kernel],
) -> Vec<Result<Report, SimError>> {
    let cfg = GpuConfig {
        core: core.clone(),
        mem: mem.clone(),
        arch: Architecture::Baseline, // per-cell archs come from `archs`
    };
    crate::session::Session::new(cfg)
        .with_pool(Pool::new(pool.threads()))
        .sweep(archs, kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MemSwapParams;
    use crate::session::{RunRequest, Session};
    use vt_isa::op::Operand;
    use vt_isa::KernelBuilder;

    /// A memory-latency-bound pointer-chase-flavoured kernel with small
    /// CTAs: the scheduling-limited shape VT accelerates.
    fn latency_bound_kernel(ctas: u32) -> Kernel {
        let n = 1 << 14;
        let mut b = KernelBuilder::new("lat");
        // idx[i] scatters reads across memory.
        let idx: Vec<u32> = (0..n).map(|i| (i * 97 + 13) % n).collect();
        let idx_buf = b.alloc_global_init(&idx);
        let out = b.alloc_global(n as usize);
        let gid = b.reg();
        let off = b.reg();
        let v = b.reg();
        let i = b.reg();
        b.global_thread_id(gid);
        b.rem(gid, Operand::Reg(gid), Operand::Imm(n));
        b.shl(off, Operand::Reg(gid), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(off), idx_buf as i32);
        b.for_range(i, Operand::Imm(0), Operand::Imm(4), 1, |b, _| {
            b.shl(off, Operand::Reg(v), Operand::Imm(2));
            b.ld_global(v, Operand::Reg(off), idx_buf as i32);
        });
        b.shl(off, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(v));
        b.exit();
        b.build(ctas, 64).unwrap()
    }

    fn small_core() -> CoreConfig {
        CoreConfig {
            num_sms: 2,
            ..CoreConfig::default()
        }
    }

    #[test]
    fn architecture_ordering_on_latency_bound_kernel() {
        let k = latency_bound_kernel(64);
        let reports = compare(
            &small_core(),
            &MemConfig::default(),
            &[
                Architecture::Baseline,
                Architecture::virtual_thread(),
                Architecture::Ideal,
                Architecture::MemSwap(MemSwapParams::default()),
            ],
            &k,
        )
        .unwrap();
        let [base, vt, ideal, memswap] = &reports[..] else {
            panic!()
        };

        // Functional equivalence across all architectures.
        for r in &reports {
            assert_eq!(r.mem_image, base.mem_image, "{}", r.arch.label());
        }
        // Performance shape: ideal >= vt > baseline; memswap <= vt.
        assert!(
            vt.stats.cycles < base.stats.cycles,
            "VT ({}) should beat baseline ({})",
            vt.stats.cycles,
            base.stats.cycles
        );
        assert!(
            ideal.stats.cycles <= vt.stats.cycles + vt.stats.cycles / 10,
            "ideal ({}) should not lose to VT ({})",
            ideal.stats.cycles,
            vt.stats.cycles
        );
        assert!(
            memswap.stats.cycles >= vt.stats.cycles,
            "memswap ({}) pays more per swap than VT ({})",
            memswap.stats.cycles,
            vt.stats.cycles
        );
        assert!(vt.stats.swaps.swaps_out > 0);
    }

    #[test]
    fn speedup_over_is_cycle_ratio() {
        let k = latency_bound_kernel(32);
        let base = Gpu::new(GpuConfig {
            core: small_core(),
            ..GpuConfig::default()
        })
        .run(&k)
        .unwrap();
        let vt = Gpu::new(GpuConfig {
            core: small_core(),
            mem: MemConfig::default(),
            arch: Architecture::virtual_thread(),
        })
        .run(&k)
        .unwrap();
        let s = vt.speedup_over(&base);
        assert!((s - base.stats.cycles as f64 / vt.stats.cycles as f64).abs() < 1e-12);
        assert!(vt.ipc() >= base.ipc());
    }

    #[test]
    fn chain_request_threads_memory_between_launches() {
        // Kernel increments every word of a shared buffer once per launch.
        let mut b = KernelBuilder::new("inc");
        let buf = b.alloc_global(4096);
        let gid = b.reg();
        let v = b.reg();
        b.global_thread_id(gid);
        b.shl(gid, Operand::Reg(gid), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(gid), buf as i32);
        b.add(v, Operand::Reg(v), Operand::Imm(1));
        b.st_global(Operand::Reg(gid), buf as i32, Operand::Reg(v));
        let k = b.build(64, 64).unwrap();

        let mut session = Session::new(GpuConfig {
            core: small_core(),
            ..GpuConfig::default()
        });
        let reports = session
            .run(RunRequest::kernels(&[&k, &k, &k]))
            .unwrap()
            .completed()
            .unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].mem_image.load(buf), Some(1));
        assert_eq!(reports[1].mem_image.load(buf), Some(2));
        assert_eq!(reports[2].mem_image.load(buf), Some(3));
    }

    #[test]
    fn gpu_config_clone_round_trips() {
        // The serde round-trip test left with the offline build; clone +
        // equality still guards against fields falling out of PartialEq.
        for arch in [
            Architecture::Baseline,
            Architecture::virtual_thread(),
            Architecture::Ideal,
            Architecture::MemSwap(MemSwapParams::default()),
        ] {
            let cfg = GpuConfig::with_arch(arch);
            assert_eq!(cfg.clone(), cfg);
        }
    }

    #[test]
    fn pooled_session_is_bit_identical_to_run() {
        let k = latency_bound_kernel(32);
        let cfg = GpuConfig {
            core: small_core(),
            mem: MemConfig::default(),
            arch: Architecture::virtual_thread(),
        };
        let seq = Gpu::new(cfg.clone()).run(&k).unwrap();
        let mut session = Session::new(cfg).with_pool(Pool::new(4));
        let par = session
            .run(RunRequest::kernel(&k))
            .unwrap()
            .completed()
            .unwrap()
            .remove(0);
        assert_eq!(par.stats, seq.stats);
        assert_eq!(par.mem_image, seq.mem_image);
    }

    #[test]
    fn session_sweep_matches_sequential_compare() {
        let kernels = vec![latency_bound_kernel(16), latency_bound_kernel(24)];
        let archs = [Architecture::Baseline, Architecture::virtual_thread()];
        let core = small_core();
        let mem = MemConfig::default();
        let session = Session::new(GpuConfig {
            core: core.clone(),
            mem: mem.clone(),
            ..GpuConfig::default()
        })
        .with_pool(Pool::new(3));
        let grid = session.sweep(&archs, &kernels);
        assert_eq!(grid.len(), kernels.len() * archs.len());
        for (ki, k) in kernels.iter().enumerate() {
            let seq = compare(&core, &mem, &archs, k).unwrap();
            for (ai, want) in seq.iter().enumerate() {
                let got = grid[ki * archs.len() + ai].as_ref().unwrap();
                assert_eq!(got.kernel, want.kernel);
                assert_eq!(got.arch, want.arch);
                assert_eq!(got.stats, want.stats);
                assert_eq!(got.mem_image, want.mem_image);
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_session_paths() {
        let k = latency_bound_kernel(16);
        let cfg = GpuConfig {
            core: small_core(),
            mem: MemConfig::default(),
            arch: Architecture::virtual_thread(),
        };
        let gpu = Gpu::new(cfg.clone());
        let want = gpu.run(&k).unwrap();
        let pool = Pool::new(2);
        let via_on = gpu.run_on(&k, Some(&pool)).unwrap();
        assert_eq!(via_on.stats, want.stats);
        let via_traced = gpu.run_traced(&k, &mut vt_trace::NullSink).unwrap();
        assert_eq!(via_traced.stats, want.stats);
        let grid = run_matrix(
            &pool,
            &cfg.core,
            &cfg.mem,
            &[Architecture::virtual_thread()],
            std::slice::from_ref(&k),
        );
        assert_eq!(grid[0].as_ref().unwrap().stats, want.stats);
    }

    #[test]
    fn occupancy_is_exposed() {
        let k = latency_bound_kernel(8);
        let gpu = Gpu::new(GpuConfig::default());
        let occ = gpu.occupancy(&k);
        assert!(
            occ.limiter.is_scheduling(),
            "64-thread 5-reg CTAs are slot-limited"
        );
        assert!(gpu.check(&k).is_ok());
    }
}
