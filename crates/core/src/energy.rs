//! A first-order dynamic-energy model.
//!
//! The paper argues Virtual Thread's context switches are energetically
//! negligible because only scheduling state moves through a small SRAM,
//! whereas memory-hierarchy CTA swapping drags the full register/shared-
//! memory image through DRAM. This module quantifies that with per-event
//! energies in the 40 nm-era range used by GPU power models
//! (GPUWattch-flavoured): the absolute joules are rough, the *ratios*
//! between the architectures are the point.

use crate::arch::Architecture;
use crate::gpu::Report;
use vt_isa::Kernel;

/// Per-event dynamic energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Execute one thread instruction (ALU + pipeline control).
    pub thread_instr_pj: f64,
    /// Register-file accesses per thread instruction (reads + write),
    /// folded into one per-instruction cost.
    pub reg_access_pj: f64,
    /// One L1D lookup.
    pub l1_access_pj: f64,
    /// One L2 lookup.
    pub l2_access_pj: f64,
    /// One 128-byte DRAM transfer.
    pub dram_line_pj: f64,
    /// One 128-byte interconnect traversal.
    pub icnt_line_pj: f64,
    /// Moving one byte into/out of the VT context buffer (small SRAM).
    pub context_byte_pj: f64,
    /// Moving one byte of CTA state through the memory hierarchy
    /// (MemSwap's cost: cache + interconnect + DRAM per byte).
    pub memswap_byte_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            thread_instr_pj: 2.0,
            reg_access_pj: 1.2,
            l1_access_pj: 30.0,
            l2_access_pj: 120.0,
            dram_line_pj: 2600.0, // ~20 pJ/bit x 128 B
            icnt_line_pj: 260.0,
            context_byte_pj: 0.3,
            memswap_byte_pj: 25.0,
        }
    }
}

/// A dynamic-energy estimate for one run, broken down by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Core (ALU + register file) energy, in microjoules.
    pub core_uj: f64,
    /// L1D energy.
    pub l1_uj: f64,
    /// L2 energy.
    pub l2_uj: f64,
    /// DRAM + interconnect energy.
    pub dram_uj: f64,
    /// Context-switch energy (context buffer for VT, memory traffic for
    /// MemSwap; zero for Baseline/Ideal).
    pub swap_uj: f64,
}

impl EnergyEstimate {
    /// Total dynamic energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.core_uj + self.l1_uj + self.l2_uj + self.dram_uj + self.swap_uj
    }

    /// The context-switch share of total energy (0..1).
    pub fn swap_fraction(&self) -> f64 {
        let t = self.total_uj();
        if t == 0.0 {
            0.0
        } else {
            self.swap_uj / t
        }
    }

    /// Energy-delay product in (µJ · cycles); lower is better.
    pub fn edp(&self, cycles: u64) -> f64 {
        self.total_uj() * cycles as f64
    }
}

/// Estimates the dynamic energy of `report`'s run of `kernel`.
///
/// Swap energy depends on the architecture: VT moves each CTA's
/// scheduling state through the context buffer; MemSwap moves the full
/// register + shared-memory image through the memory hierarchy; the
/// baseline and the idealised machine never switch.
pub fn estimate(report: &Report, kernel: &Kernel, p: &EnergyParams) -> EnergyEstimate {
    let s = &report.stats;
    let pj_to_uj = 1e-6;
    let core_uj = s.thread_instrs as f64 * (p.thread_instr_pj + p.reg_access_pj) * pj_to_uj;
    let l1_uj =
        (s.mem.l1_accesses + s.mem.stores + s.mem.atomics) as f64 * p.l1_access_pj * pj_to_uj;
    let l2_uj = s.mem.l2_accesses as f64 * p.l2_access_pj * pj_to_uj;
    let dram_lines = (s.mem.dram_reads + s.mem.dram_writes) as f64;
    let icnt_lines = (s.mem.l1_misses + s.mem.stores + s.mem.atomics) as f64 * 2.0;
    let dram_uj = (dram_lines * p.dram_line_pj + icnt_lines * p.icnt_line_pj) * pj_to_uj;

    let swap_events = s.swaps.swaps_out + s.swaps.swaps_in;
    let swap_uj = match report.arch {
        Architecture::VirtualThread(v) => {
            let bytes = u64::from(v.context_bytes_per_warp() * kernel.warps_per_cta());
            (swap_events * bytes) as f64 * p.context_byte_pj * pj_to_uj
        }
        Architecture::MemSwap(_) => {
            let bytes = u64::from(kernel.reg_bytes_per_cta() + kernel.smem_bytes_per_cta());
            (swap_events * bytes) as f64 * p.memswap_byte_pj * pj_to_uj
        }
        Architecture::Baseline | Architecture::Ideal => 0.0,
    };
    EnergyEstimate {
        core_uj,
        l1_uj,
        l2_uj,
        dram_uj,
        swap_uj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{compare, Gpu, GpuConfig};
    use crate::MemSwapParams;
    use vt_core_test_kernels::latency_kernel;

    // A tiny private helper crate-in-module so the test kernel builder is
    // shared without polluting the public API.
    mod vt_core_test_kernels {
        use vt_isa::op::Operand;
        use vt_isa::{Kernel, KernelBuilder};

        pub fn latency_kernel() -> Kernel {
            let mut b = KernelBuilder::new("e");
            let data = b.alloc_global(1 << 15);
            let gid = b.reg();
            let v = b.reg();
            let i = b.reg();
            b.global_thread_id(gid);
            b.and_(v, Operand::Reg(gid), Operand::Imm((1 << 15) - 1));
            b.for_range(i, Operand::Imm(0), Operand::Imm(4), 1, |b, _| {
                b.shl(v, Operand::Reg(v), Operand::Imm(2));
                b.and_(v, Operand::Reg(v), Operand::Imm((1 << 17) - 4));
                b.ld_global(v, Operand::Reg(v), data as i32);
            });
            b.shl(gid, Operand::Reg(gid), Operand::Imm(2));
            b.and_(gid, Operand::Reg(gid), Operand::Imm((1 << 17) - 4));
            b.st_global(Operand::Reg(gid), data as i32, Operand::Reg(v));
            b.pad_regs(16);
            b.build(48, 64).unwrap()
        }
    }

    fn small(arch: Architecture) -> GpuConfig {
        let mut cfg = GpuConfig::with_arch(arch);
        cfg.core.num_sms = 2;
        cfg
    }

    #[test]
    fn baseline_has_no_swap_energy() {
        let k = latency_kernel();
        let r = Gpu::new(small(Architecture::Baseline)).run(&k).unwrap();
        let e = estimate(&r, &k, &EnergyParams::default());
        assert_eq!(e.swap_uj, 0.0);
        assert!(e.total_uj() > 0.0);
        assert!(e.core_uj > 0.0 && e.dram_uj > 0.0);
    }

    #[test]
    fn vt_swap_energy_is_negligible_memswap_is_not() {
        let k = latency_kernel();
        let reports = compare(
            &small(Architecture::Baseline).core,
            &GpuConfig::default().mem,
            &[
                Architecture::virtual_thread(),
                Architecture::MemSwap(MemSwapParams::default()),
            ],
            &k,
        )
        .unwrap();
        let p = EnergyParams::default();
        let vt = estimate(&reports[0], &k, &p);
        let ms = estimate(&reports[1], &k, &p);
        assert!(
            reports[0].stats.swaps.swaps_out > 0,
            "VT must actually swap"
        );
        assert!(
            vt.swap_fraction() < 0.02,
            "VT swap energy must be negligible, got {:.4}",
            vt.swap_fraction()
        );
        if reports[1].stats.swaps.swaps_out > 0 {
            assert!(
                ms.swap_uj > 20.0 * vt.swap_uj.max(1e-9),
                "memswap ({:.3} uJ) must dwarf VT ({:.3} uJ)",
                ms.swap_uj,
                vt.swap_uj
            );
        }
    }

    #[test]
    fn edp_improves_with_vt_on_latency_bound_work() {
        let k = latency_kernel();
        let p = EnergyParams::default();
        let base = Gpu::new(small(Architecture::Baseline)).run(&k).unwrap();
        let vt = Gpu::new(small(Architecture::virtual_thread()))
            .run(&k)
            .unwrap();
        let e_base = estimate(&base, &k, &p).edp(base.stats.cycles);
        let e_vt = estimate(&vt, &k, &p).edp(vt.stats.cycles);
        assert!(
            e_vt < e_base,
            "VT EDP ({e_vt:.1}) should beat baseline ({e_base:.1})"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let e = EnergyEstimate {
            core_uj: 1.0,
            l1_uj: 2.0,
            l2_uj: 3.0,
            dram_uj: 4.0,
            swap_uj: 0.5,
        };
        assert!((e.total_uj() - 10.5).abs() < 1e-12);
        assert!((e.swap_fraction() - 0.5 / 10.5).abs() < 1e-12);
        assert_eq!(e.edp(2), 21.0);
    }
}
