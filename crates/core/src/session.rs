//! Sessions: the single entry point for running kernels.
//!
//! A [`Session`] owns everything one series of runs shares — the GPU
//! configuration, an optional worker [`Pool`], a trace sink, a default
//! [`RunBudget`] and a [`CancelToken`] — and consumes [`RunRequest`]s.
//! One request runs one kernel or a dependent chain of kernels, may
//! override the budget, and may resume from a [`Checkpoint`]. This
//! replaces the old `run`/`run_on`/`run_traced`/`run_traced_on`/
//! `run_chain`/`run_matrix` surface with one orthogonal builder.
//!
//! ```
//! use vt_core::{Architecture, GpuConfig, RunRequest, Session, SessionOutcome};
//! use vt_isa::KernelBuilder;
//! use vt_isa::op::Operand;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = KernelBuilder::new("bump");
//! let buf = b.alloc_global(2048);
//! let gid = b.reg();
//! b.global_thread_id(gid);
//! b.shl(gid, Operand::Reg(gid), Operand::Imm(2));
//! b.st_global(Operand::Reg(gid), buf as i32, Operand::Imm(7));
//! let kernel = b.build(32, 64)?;
//!
//! let mut cfg = GpuConfig::with_arch(Architecture::virtual_thread());
//! cfg.core.num_sms = 2;
//! let mut session = Session::new(cfg);
//! let SessionOutcome::Completed(reports) =
//!     session.run(RunRequest::kernel(&kernel))?
//! else {
//!     unreachable!("no budget configured");
//! };
//! assert_eq!(reports.len(), 1);
//! assert!(reports[0].stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

use crate::arch::Architecture;
use crate::gpu::{GpuConfig, Report};
use vt_isa::kernel::MemImage;
use vt_isa::Kernel;
use vt_par::Pool;
use vt_sim::{
    CancelToken, Checkpoint, GpuSim, Progress, ProgressHook, RunBudget, RunOutcome, SimConfig,
    SimError, Truncation,
};
use vt_trace::{NullSink, TraceSink};

/// What to run: one kernel or a dependent chain, with optional
/// per-request budget override and checkpoint to resume from.
///
/// A chain threads each launch's final memory image into the next
/// launch, so every kernel must address the same global-memory layout.
/// The chain inherits the session's pool, sink and cancellation token.
#[derive(Debug, Clone)]
pub struct RunRequest<'a> {
    kernels: Vec<&'a Kernel>,
    budget: Option<RunBudget>,
    resume_from: Option<&'a Checkpoint>,
}

impl<'a> RunRequest<'a> {
    /// A request to run one kernel.
    pub fn kernel(kernel: &'a Kernel) -> RunRequest<'a> {
        RunRequest {
            kernels: vec![kernel],
            budget: None,
            resume_from: None,
        }
    }

    /// A request to run a dependent chain of kernels, threading each
    /// launch's final memory image into the next launch.
    pub fn kernels(kernels: &[&'a Kernel]) -> RunRequest<'a> {
        RunRequest {
            kernels: kernels.to_vec(),
            budget: None,
            resume_from: None,
        }
    }

    /// Overrides the session's default budget for this request. The
    /// budget applies to each kernel launch of a chain separately
    /// (budgets are relative to one engine call).
    pub fn with_budget(mut self, budget: RunBudget) -> RunRequest<'a> {
        self.budget = Some(budget);
        self
    }

    /// Resumes the (single) kernel of this request from `checkpoint`
    /// instead of starting it fresh. Only valid on single-kernel
    /// requests.
    pub fn resume_from(mut self, checkpoint: &'a Checkpoint) -> RunRequest<'a> {
        self.resume_from = Some(checkpoint);
        self
    }
}

/// The outcome of one [`Session::run`] call.
#[derive(Debug, Clone)]
pub enum SessionOutcome {
    /// Every kernel of the request completed; one report per kernel in
    /// request order.
    Completed(Vec<Report>),
    /// The budget or a cancellation stopped the run partway.
    Truncated {
        /// Reports for the chain prefix that did complete.
        completed: Vec<Report>,
        /// Index (in the request's kernel list) of the truncated kernel.
        kernel_index: usize,
        /// Why it stopped, partial stats, and the resume checkpoint.
        truncation: Box<Truncation>,
    },
}

impl SessionOutcome {
    /// Whether every kernel completed.
    pub fn is_complete(&self) -> bool {
        matches!(self, SessionOutcome::Completed(_))
    }

    /// The completed reports, or an error naming the stop reason. Use
    /// when truncation is not expected.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Truncated`] if the run stopped early.
    pub fn completed(self) -> Result<Vec<Report>, SimError> {
        match self {
            SessionOutcome::Completed(reports) => Ok(reports),
            SessionOutcome::Truncated { truncation, .. } => Err(SimError::Truncated {
                reason: truncation.reason,
            }),
        }
    }
}

/// A run context owning the pieces every launch shares: configuration,
/// worker pool, trace sink, default budget, cancellation token.
///
/// Results are bit-identical at any pool size: the engine's concurrent
/// phase shares nothing between SMs and its merge order is fixed.
///
/// See the [module docs](self) for an example, and
/// [`Session::cancel_token`] / [`RunRequest::with_budget`] /
/// [`RunRequest::resume_from`] for execution control.
pub struct Session<S: TraceSink = NullSink> {
    cfg: GpuConfig,
    pool: Option<Pool>,
    sink: S,
    budget: RunBudget,
    cancel: CancelToken,
    progress: Option<(u64, ProgressCallback)>,
}

/// Boxed [`Session::with_progress`] callback.
type ProgressCallback = Box<dyn FnMut(&Progress)>;

impl Session<NullSink> {
    /// A session with no pool, no tracing and no budget.
    pub fn new(cfg: GpuConfig) -> Session<NullSink> {
        Session {
            cfg,
            pool: None,
            sink: NullSink,
            budget: RunBudget::unlimited(),
            cancel: CancelToken::new(),
            progress: None,
        }
    }
}

impl<S: TraceSink> Session<S> {
    /// Shards the per-cycle SM phase (and sweep cells) across `pool`.
    pub fn with_pool(mut self, pool: Pool) -> Session<S> {
        self.pool = Some(pool);
        self
    }

    /// Sets the default budget for requests that do not carry their own.
    pub fn with_budget(mut self, budget: RunBudget) -> Session<S> {
        self.budget = budget;
        self
    }

    /// Replaces the trace sink. Every subsequent launch emits its events
    /// into `sink`; retrieve it with [`Session::into_sink`].
    pub fn with_sink<T: TraceSink>(self, sink: T) -> Session<T> {
        Session {
            cfg: self.cfg,
            pool: self.pool,
            sink,
            budget: self.budget,
            cancel: self.cancel,
            progress: self.progress,
        }
    }

    /// Registers a progress callback invoked every `every` cycles of each
    /// launch (at the top-of-cycle boundary, where the [`Progress`]
    /// counters are coherent). Progress reporting is independent of
    /// metrics sampling and never perturbs results.
    pub fn with_progress(
        mut self,
        every: u64,
        callback: impl FnMut(&Progress) + 'static,
    ) -> Session<S> {
        self.progress = Some((every, Box::new(callback)));
        self
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The worker pool, if one was attached.
    pub fn pool(&self) -> Option<&Pool> {
        self.pool.as_ref()
    }

    /// A handle that cancels this session's runs from another thread (or
    /// a signal handler): clones share the flag, which the engine polls
    /// once per cycle.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Replaces the cancellation token, so several sessions (or an
    /// external handler such as Ctrl-C) can share one flag.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Session<S> {
        self.cancel = cancel;
        self
    }

    /// Replaces the cancellation token with a fresh one, un-cancelling
    /// the session after a cancelled run.
    pub fn reset_cancel(&mut self) {
        self.cancel = CancelToken::new();
    }

    /// Consumes the session, returning the trace sink with everything
    /// the runs emitted.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Runs a request: each kernel in order, threading the memory image
    /// through chains, under the session's pool/sink/cancellation and
    /// the request's (or session's) budget.
    ///
    /// On truncation the outcome carries the completed chain prefix,
    /// partial statistics for the stopped kernel and a [`Checkpoint`];
    /// pass the checkpoint to [`RunRequest::resume_from`] to continue
    /// bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on launch failure, a functional trap,
    /// watchdog expiry, or a checkpoint that does not match the request.
    pub fn run(&mut self, req: RunRequest<'_>) -> Result<SessionOutcome, SimError> {
        if req.kernels.is_empty() {
            return Ok(SessionOutcome::Completed(Vec::new()));
        }
        if req.resume_from.is_some() && req.kernels.len() != 1 {
            return Err(SimError::Checkpoint {
                reason: format!(
                    "resume requires a single-kernel request, got {} kernels",
                    req.kernels.len()
                ),
            });
        }
        let budget = req.budget.unwrap_or(self.budget);
        let mut completed = Vec::with_capacity(req.kernels.len());
        let mut image: Option<MemImage> = None;
        for (kernel_index, &k) in req.kernels.iter().enumerate() {
            let staged;
            let kernel = match image.take() {
                Some(img) => {
                    staged = k.with_global_mem(img);
                    &staged
                }
                None => k,
            };
            let residency = self
                .cfg
                .arch
                .residency_for(kernel, &self.cfg.core, &self.cfg.mem);
            let sim_cfg = SimConfig {
                core: self.cfg.core.clone(),
                mem: self.cfg.mem.clone(),
                residency,
            };
            let sim = match req.resume_from {
                Some(ckpt) => GpuSim::resume(&sim_cfg, kernel, ckpt)?,
                None => GpuSim::new(&sim_cfg, kernel)?,
            };
            let hook = self
                .progress
                .as_mut()
                .map(|(every, cb)| ProgressHook::new(*every, cb.as_mut()));
            let outcome = sim.execute_with_progress(
                self.pool.as_ref(),
                &mut self.sink,
                &budget,
                Some(&self.cancel),
                hook,
            )?;
            match outcome {
                RunOutcome::Completed(r) => {
                    image = Some(r.mem_image.clone());
                    completed.push(Report {
                        kernel: kernel.name().to_string(),
                        arch: self.cfg.arch,
                        residency,
                        stats: r.stats,
                        mem_image: r.mem_image,
                    });
                }
                RunOutcome::Truncated(truncation) => {
                    return Ok(SessionOutcome::Truncated {
                        completed,
                        kernel_index,
                        truncation,
                    });
                }
            }
        }
        Ok(SessionOutcome::Completed(completed))
    }

    /// Runs the full `kernels` × `archs` grid with this session's core
    /// and memory parameters, fanning independent cells across the
    /// session's pool (inline without one). Returns one result per cell
    /// in kernel-major order regardless of which worker finished first —
    /// each cell is an isolated simulation, so the grid is deterministic
    /// at any thread count.
    ///
    /// Cells run to completion untraced (a shared sink would interleave
    /// events nondeterministically); per-cell failures are reported in
    /// place so a sweep can present partial results.
    pub fn sweep(
        &self,
        archs: &[Architecture],
        kernels: &[Kernel],
    ) -> Vec<Result<Report, SimError>> {
        let jobs: Vec<_> = kernels
            .iter()
            .flat_map(|kernel| archs.iter().map(move |&arch| (kernel, arch)))
            .map(|(kernel, arch)| {
                let cfg = GpuConfig {
                    core: self.cfg.core.clone(),
                    mem: self.cfg.mem.clone(),
                    arch,
                };
                move || crate::gpu::Gpu::new(cfg).run(kernel)
            })
            .collect();
        match &self.pool {
            Some(pool) => vt_par::sweep(pool, jobs),
            None => jobs.into_iter().map(|job| job()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use vt_isa::op::Operand;
    use vt_isa::KernelBuilder;

    fn bump_kernel() -> Kernel {
        let mut b = KernelBuilder::new("bump");
        let buf = b.alloc_global(4096);
        let gid = b.reg();
        b.global_thread_id(gid);
        b.shl(gid, Operand::Reg(gid), Operand::Imm(2));
        b.st_global(Operand::Reg(gid), buf as i32, Operand::Imm(7));
        b.build(32, 128).expect("kernel builds")
    }

    #[test]
    fn progress_callback_fires_without_perturbing_results() {
        let kernel = bump_kernel();
        let mut cfg = GpuConfig::with_arch(Architecture::virtual_thread());
        cfg.core.num_sms = 2;

        let mut plain = Session::new(cfg.clone());
        let baseline = plain
            .run(RunRequest::kernel(&kernel))
            .expect("plain run")
            .completed()
            .expect("no budget");

        let reports: Rc<RefCell<Vec<Progress>>> = Rc::default();
        let sink = Rc::clone(&reports);
        let mut observed =
            Session::new(cfg).with_progress(16, move |p: &Progress| sink.borrow_mut().push(*p));
        let watched = observed
            .run(RunRequest::kernel(&kernel))
            .expect("observed run")
            .completed()
            .expect("no budget");

        let reports = reports.borrow();
        let cycles = baseline[0].stats.cycles;
        assert_eq!(reports.len(), ((cycles - 1) / 16) as usize);
        assert!(reports.windows(2).all(|w| w[0].cycle < w[1].cycle));
        assert!(reports.iter().all(|p| p.budget_cycles.is_none()));
        assert_eq!(
            baseline[0].stats, watched[0].stats,
            "progress observation must not perturb the simulation"
        );
    }

    #[test]
    fn profile_flag_rides_session_reports() {
        let kernel = bump_kernel();
        let mut cfg = GpuConfig::with_arch(Architecture::virtual_thread());
        cfg.core.num_sms = 2;

        let plain = Session::new(cfg.clone())
            .run(RunRequest::kernel(&kernel))
            .expect("plain run")
            .completed()
            .expect("no budget");
        assert!(plain[0].stats.hotspots.is_none(), "profiling is opt-in");

        cfg.core.profile = true;
        let profiled = Session::new(cfg)
            .run(RunRequest::kernel(&kernel))
            .expect("profiled run")
            .completed()
            .expect("no budget");
        let h = profiled[0]
            .stats
            .hotspots
            .as_ref()
            .expect("profiled session reports per-PC hotspots");
        assert_eq!(h.len(), kernel.program().len());
        assert_eq!(h.issued_total(), plain[0].stats.cpi_stack().issued);
        assert_eq!(plain[0].stats.cycles, profiled[0].stats.cycles);
    }
}
