//! # vt-core — the Virtual Thread architecture
//!
//! Reproduction of *Virtual Thread: Maximizing Thread-Level Parallelism
//! beyond GPU Scheduling Limit* (Yoon, Kim, Lee, Ro, Annavaram — ISCA
//! 2016).
//!
//! A GPU SM hosts concurrent CTAs up to the minimum of two limit
//! families: the **scheduling limit** (CTA slots, warp slots / PCs / SIMT
//! stacks) and the **capacity limit** (register file, shared memory).
//! Many kernels hit the scheduling limit first, stranding most of the
//! on-chip memory. Virtual Thread admits CTAs up to the *capacity* limit
//! and time-multiplexes the scheduling structures across them: when every
//! warp of an active CTA is stuck on a long-latency stall, only its small
//! scheduling state (PCs + SIMT stacks + scoreboards) is saved to an
//! on-chip context buffer and a ready inactive CTA takes the slot.
//! Registers and shared memory never move, so a swap costs tens of cycles
//! instead of the thousands a full context switch through the memory
//! hierarchy would.
//!
//! This crate is the public face of the reproduction:
//!
//! * [`Architecture`] — `Baseline`, `VirtualThread`, `Ideal` (scheduling
//!   structures scaled for free) and `MemSwap` (full-state switching
//!   through memory), each lowering to the `vt-sim` residency mechanism,
//! * [`Gpu`] / [`GpuConfig`] / [`Report`] — configure, run, measure,
//! * [`overhead`] — the context-buffer storage model behind the paper's
//!   low-complexity claim,
//! * re-exports of the occupancy/limiter analysis from `vt-sim`.
//!
//! ```
//! use vt_core::{Architecture, Gpu, GpuConfig};
//! use vt_isa::KernelBuilder;
//! use vt_isa::op::Operand;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy kernel: every thread bumps one word.
//! let mut b = KernelBuilder::new("bump");
//! let buf = b.alloc_global(2048);
//! let gid = b.reg();
//! b.global_thread_id(gid);
//! b.shl(gid, Operand::Reg(gid), Operand::Imm(2));
//! b.st_global(Operand::Reg(gid), buf as i32, Operand::Imm(7));
//! let kernel = b.build(32, 64)?;
//!
//! let mut cfg = GpuConfig::with_arch(Architecture::virtual_thread());
//! cfg.core.num_sms = 2;
//! let report = Gpu::new(cfg).run(&kernel)?;
//! println!("{} cycles, IPC {:.1}", report.stats.cycles, report.ipc());
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub mod arch;
pub mod energy;
pub mod gpu;
pub mod overhead;
pub mod session;

pub use arch::{Architecture, MemSwapParams, VtParams};
pub use energy::{estimate as estimate_energy, EnergyEstimate, EnergyParams};
#[allow(deprecated)]
pub use gpu::run_matrix;
pub use gpu::{compare, Gpu, GpuConfig, Report};
pub use overhead::{context_buffer, OverheadBreakdown};
pub use session::{RunRequest, Session, SessionOutcome};

// The analysis types figures are built from.
pub use vt_sim::{
    occupancy, CoreConfig, CpiStack, EmptyBreakdown, IdleBreakdown, Limiter, OccupancyAnalysis,
    PcCounters, PcProfile, RunStats, SchedPolicy, SimError, StallReason, SwapTrigger,
};

// Execution control (budgets, cancellation, checkpoint/resume) and
// observability (progress reports, windowed metric series), so
// downstream tools need not depend on vt-sim directly.
pub use vt_sim::{
    CancelToken, Checkpoint, Progress, ProgressHook, RunBudget, RunOutcome, StopReason, Truncation,
};
pub use vt_trace::MetricsRegistry;

pub use vt_mem::MemConfig;

// The deterministic executor, so downstream tools need not depend on
// vt-par directly.
pub use vt_par::{default_threads, sweep, Pool};
