//! An iterative application: repeated relaxation sweeps over a shared
//! buffer, chained with a multi-kernel `RunRequest` so each launch
//! consumes the previous launch's memory image — the way real solvers
//! run a kernel per iteration.
//!
//! ```text
//! cargo run --release -p vt-examples --bin iterative_app [iterations]
//! ```

use vt_core::{Architecture, GpuConfig, RunRequest, Session};
use vt_isa::op::Operand;
use vt_isa::KernelBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let n = 16 * 1024u32;

    // One relaxation sweep: x[i] = (x[i] + x[(i+1) mod n]) / 2, staged
    // through a second half of the buffer to stay race-free.
    let build_sweep = |src_half: u32, dst_half: u32| -> vt_isa::Kernel {
        let mut b = KernelBuilder::new(if src_half == 0 { "sweep-a" } else { "sweep-b" });
        let buf = b.alloc_global_init(&(0..2 * n).map(|i| (i % n) * 100).collect::<Vec<_>>());
        let gid = b.reg();
        let off = b.reg();
        let a = b.reg();
        let c = b.reg();
        b.global_thread_id(gid);
        b.shl(off, Operand::Reg(gid), Operand::Imm(2));
        b.ld_global(a, Operand::Reg(off), (buf + 4 * n * src_half) as i32);
        b.add(c, Operand::Reg(gid), Operand::Imm(1));
        b.rem(c, Operand::Reg(c), Operand::Imm(n));
        b.shl(c, Operand::Reg(c), Operand::Imm(2));
        b.ld_global(c, Operand::Reg(c), (buf + 4 * n * src_half) as i32);
        b.add(a, Operand::Reg(a), Operand::Reg(c));
        b.shr(a, Operand::Reg(a), Operand::Imm(1));
        b.st_global(
            Operand::Reg(off),
            (buf + 4 * n * dst_half) as i32,
            Operand::Reg(a),
        );
        b.build(n / 64, 64).expect("sweep kernel is valid")
    };
    let sweep_ab = build_sweep(0, 1);
    let sweep_ba = build_sweep(1, 0);

    // Alternate the two sweeps for the requested number of iterations.
    let chain: Vec<&vt_isa::Kernel> = (0..iterations)
        .map(|i| if i % 2 == 0 { &sweep_ab } else { &sweep_ba })
        .collect();

    for arch in [Architecture::Baseline, Architecture::virtual_thread()] {
        let mut session = Session::new(GpuConfig::with_arch(arch));
        let reports = session.run(RunRequest::kernels(&chain))?.completed()?;
        let total: u64 = reports.iter().map(|r| r.stats.cycles).sum();
        let swaps: u64 = reports.iter().map(|r| r.stats.swaps.swaps_out).sum();
        println!(
            "{:9} {iterations} launches: {total:8} total cycles, {swaps:6} swaps, final x[0..4] = {:?}",
            arch.label(),
            reports.last().expect("non-empty chain").mem_image.load_words(0, 4),
        );
    }
    Ok(())
}
