//! Scheduler study: run one suite workload under every combination of
//! warp scheduler (LRR/GTO) and architecture (baseline/VT), showing that
//! VT's benefit is orthogonal to the issue policy.
//!
//! ```text
//! cargo run --release -p vt-examples --bin scheduler_study [workload]
//! ```

use vt_core::{Architecture, Gpu, GpuConfig, SchedPolicy};
use vt_workloads::{suite, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "streamcluster".to_string());
    let workloads = suite(&Scale {
        ctas: 240,
        iters: 4,
    });
    let w = workloads
        .iter()
        .find(|w| w.name == which)
        .unwrap_or_else(|| {
            let names: Vec<&str> = workloads.iter().map(|w| w.name).collect();
            panic!("unknown workload `{which}`; try one of {names:?}")
        });
    println!("workload `{}` ({})\n", w.name, w.mirrors);
    println!("scheduler  architecture   cycles      IPC   mem-idle SM-cycles");
    let mut cycles = [[0u64; 2]; 2];
    for (si, sched) in [SchedPolicy::Lrr, SchedPolicy::Gto].into_iter().enumerate() {
        for (ai, arch) in [Architecture::Baseline, Architecture::virtual_thread()]
            .into_iter()
            .enumerate()
        {
            let mut cfg = GpuConfig::with_arch(arch);
            cfg.core.scheduler = sched;
            let r = Gpu::new(cfg).run(&w.kernel)?;
            cycles[si][ai] = r.stats.cycles;
            println!(
                "{:9} {:12} {:9} {:8.1} {:12}",
                format!("{sched:?}"),
                arch.label(),
                r.stats.cycles,
                r.ipc(),
                r.stats.idle.memory
            );
        }
    }
    println!(
        "\nVT speedup: {:.2}x under LRR, {:.2}x under GTO",
        cycles[0][0] as f64 / cycles[0][1] as f64,
        cycles[1][0] as f64 / cycles[1][1] as f64
    );
    Ok(())
}
