//! Write a kernel in the textual assembly, inspect its disassembly, and
//! validate the timing simulator against the functional interpreter.
//!
//! ```text
//! cargo run --release -p vt-examples --bin custom_kernel
//! ```

use vt_core::{Gpu, GpuConfig};
use vt_isa::asm::{assemble, disassemble};
use vt_isa::interp::Interpreter;

const SRC: &str = r"
    .kernel oddeven
    .grid 64 64
    .globalmem 8192
    ; out[gid] = gid odd ? 3*gid : gid/2, via divergent branches
    mad r0, %ctaid, %ntid, %tid
    and r1, r0, 1
    brc.z r1, @even, @join
    mul r2, r0, 3
    bra @join
@even:
    shr r2, r0, 1
@join:
    shl r3, r0, 2
    st.g [r3+16384], r2     ; out buffer lives at word 4096
    exit
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = assemble(SRC)?;
    println!(
        "assembled `{}` ({} instructions):\n",
        kernel.name(),
        kernel.program().len()
    );
    println!("{}", disassemble(kernel.program()));

    // Functional oracle.
    let reference = Interpreter::new(&kernel)?.run()?;

    // Cycle-level run.
    let mut cfg = GpuConfig::default();
    cfg.core.num_sms = 4;
    let report = Gpu::new(cfg).run(&kernel)?;

    assert_eq!(
        report.mem_image.as_words(),
        reference.mem().as_words(),
        "simulator and interpreter agree bit-for-bit"
    );
    for gid in [0u32, 1, 7, 100] {
        let got = report.mem_image.load(16384 + 4 * gid).expect("in range");
        let want = if gid % 2 == 1 { gid * 3 } else { gid / 2 };
        assert_eq!(got, want);
        println!("out[{gid:3}] = {got}");
    }
    println!(
        "\n{} cycles, {} divergent branches, max SIMT depth {}",
        report.stats.cycles, report.stats.divergent_branches, report.stats.max_simt_depth
    );
    Ok(())
}
