//! Quickstart: build a kernel with the DSL, run it on the baseline GPU
//! and on Virtual Thread, and compare.
//!
//! ```text
//! cargo run --release -p vt-examples --bin quickstart
//! ```

use vt_core::{Architecture, Gpu, GpuConfig};
use vt_isa::op::Operand;
use vt_isa::KernelBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A memory-latency-bound kernel: every thread chases pointers through
    // an L2-resident table. Small CTAs mean the baseline GPU runs out of
    // CTA slots long before it runs out of registers.
    let nodes = 32 * 1024u32;
    let mut b = KernelBuilder::new("chase");
    // Warp-coherent chase: every entry points at a 32-aligned node, so a
    // warp starting from an aligned node stays together and each hop is
    // one coalesced transaction to a random L2-resident line.
    let next: Vec<u32> = (0..nodes)
        .map(|i| ((i / 32) * 2654435761 % nodes) & !31)
        .collect();
    let table = b.alloc_global_init(&next);
    let out = b.alloc_global(nodes as usize);

    let gid = b.reg();
    let v = b.reg();
    let off = b.reg();
    let i = b.reg();
    b.global_thread_id(gid);
    b.and_(v, Operand::Reg(gid), Operand::Imm((nodes - 1) & !31));
    b.or_(v, Operand::Reg(v), Operand::Sreg(vt_isa::Sreg::Lane));
    b.for_range(i, Operand::Imm(0), Operand::Imm(8), 1, |b, _| {
        b.shl(off, Operand::Reg(v), Operand::Imm(2));
        b.ld_global(v, Operand::Reg(off), table as i32);
        b.or_(v, Operand::Reg(v), Operand::Sreg(vt_isa::Sreg::Lane));
    });
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.st_global(Operand::Reg(off), out as i32, Operand::Reg(v));
    let kernel = b.build(480, 64)?; // 480 CTAs of 64 threads

    println!("kernel `{}`:", kernel.name());
    println!(
        "  {} CTAs x {} threads, {} regs/thread",
        kernel.num_ctas(),
        kernel.threads_per_cta(),
        kernel.regs_per_thread()
    );

    // What limits its occupancy?
    let gpu = Gpu::new(GpuConfig::default());
    let occ = gpu.occupancy(&kernel);
    println!(
        "  occupancy: {} CTAs/SM under the baseline (limited by {}), {} under capacity-only",
        occ.baseline_ctas, occ.limiter, occ.capacity_ctas
    );

    // Run it on both architectures.
    let base = gpu.run(&kernel)?;
    let vt = Gpu::new(GpuConfig::with_arch(Architecture::virtual_thread())).run(&kernel)?;
    assert_eq!(base.mem_image, vt.mem_image, "same functional result");

    println!("\n              cycles      IPC    resident warps   swaps");
    for r in [&base, &vt] {
        println!(
            "  {:9} {:8} {:8.1} {:12.1} {:11}",
            r.arch.label(),
            r.stats.cycles,
            r.ipc(),
            r.stats.occupancy.avg_resident_warps(),
            r.stats.swaps.swaps_out
        );
    }
    println!("\nVirtual Thread speedup: {:.2}x", vt.speedup_over(&base));
    Ok(())
}
