//! Occupancy explorer: sweep a kernel's resource footprint and see which
//! limit binds where — the paper's Figure-1 analysis as an interactive
//! tool.
//!
//! ```text
//! cargo run --release -p vt-examples --bin occupancy_explorer [threads] [smem-bytes]
//! ```

use vt_core::{occupancy, CoreConfig};
use vt_workloads::SyntheticParams;

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let smem: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let core = CoreConfig::default();

    println!(
        "Occupancy of a {threads}-thread/{smem}-B-smem CTA on {} warp slots / {} CTA slots / \
         {} KiB registers / {} KiB shared memory per SM:\n",
        core.max_warps_per_sm,
        core.max_ctas_per_sm,
        core.regfile_bytes / 1024,
        core.smem_bytes / 1024
    );
    println!("regs/thread  cta-slots  warp-slots  registers  smem  baseline  capacity  limiter        VT headroom");
    for regs in [8u16, 12, 16, 24, 32, 48, 64, 96, 128] {
        let kernel = SyntheticParams {
            threads_per_cta: threads,
            regs_per_thread: regs,
            smem_bytes: smem,
            ctas: 1,
            iters: 1,
            ..SyntheticParams::default()
        }
        .build();
        let occ = occupancy::analyze(&core, &kernel);
        let smem_col = if occ.by_shared_memory == u32::MAX {
            "-".to_string()
        } else {
            occ.by_shared_memory.to_string()
        };
        println!(
            "{:11} {:10} {:11} {:10} {:>5} {:9} {:9} {:14} {:.1}x",
            regs,
            occ.by_cta_slots,
            occ.by_warp_slots,
            occ.by_registers,
            smem_col,
            occ.baseline_ctas,
            occ.capacity_ctas,
            occ.limiter.to_string(),
            occ.virtualization_headroom()
        );
    }
    println!(
        "\nRows where the limiter is cta-slots/warp-slots are the kernels Virtual Thread\n\
         accelerates: the capacity column shows how many CTAs it can make resident."
    );
}
