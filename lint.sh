#!/usr/bin/env bash
# Repository lint gate: formatting, clippy (warnings are errors), and
# the static kernel analyzer over the built-in workload suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== vtlint --suite"
cargo run -q -p vt-analysis --bin vtlint -- --suite

echo "== vtprof --check (trace validation on one suite kernel)"
cargo run -q -p vt-bench --bin vtprof -- spmv --check --out "$(mktemp -d)"

echo "lint: OK"
