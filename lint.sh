#!/usr/bin/env bash
# Repository lint gate: formatting, clippy (warnings are errors), and
# the static kernel analyzer over the built-in workload suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== unsafe audit (forbid everywhere; par's sites SAFETY-commented)"
tools/unsafe_audit.sh

echo "== vtlint --suite"
cargo run -q -p vt-analysis --bin vtlint -- --suite

echo "== vtlint --model --suite (static occupancy/VT-benefit model)"
cargo run -q -p vt-analysis --bin vtlint -- --model --suite

echo "== vtlint CLI contract (exit codes + JSON schemas)"
cargo test -q -p vt-analysis --test vtlint_cli

echo "== vtprof --check (trace + metrics validation on one suite kernel)"
VTPROF_TMP="$(mktemp -d)"
cargo run -q -p vt-bench --bin vtprof -- spmv --check \
  --metrics "$VTPROF_TMP/spmv.prom" --out "$VTPROF_TMP"

echo "== golden stats (suite snapshots must not drift)"
cargo test -q -p vt-tests --test golden

echo "== metrics exposition golden (Prometheus format must not drift)"
cargo test -q -p vt-tests --test metrics

echo "== static model golden (vtlint --model --json output must not drift)"
cargo test -q -p vt-tests --test model_golden

echo "== static-vs-dynamic oracle (model bounds vs observed residency)"
cargo test -q -p vt-tests --test static_model

echo "== vtbench --diff (perf-regression gate against BENCH_0.json)"
VTBENCH_TMP="$(mktemp -d)"
cargo run -q --release -p vt-bench --bin vtbench -- \
  --out "$VTBENCH_TMP/now.json" >/dev/null
cargo run -q --release -p vt-bench --bin vtbench -- \
  --diff BENCH_0.json "$VTBENCH_TMP/now.json" >/dev/null

echo "== vtbench gate trips on a synthetic 5% regression"
cargo run -q --release -p vt-bench --bin vtbench -- \
  --degrade 5 "$VTBENCH_TMP/now.json" "$VTBENCH_TMP/slow.json" >/dev/null
if cargo run -q --release -p vt-bench --bin vtbench -- \
  --diff BENCH_0.json "$VTBENCH_TMP/slow.json" >/dev/null 2>&1; then
  echo "lint: vtbench --diff failed to flag a 5% geomean regression" >&2
  exit 1
fi

echo "== CPI-stack goldens + conservation property (tests/golden/cpi.*.json)"
cargo test -q -p vt-tests --test cpi

echo "== per-PC hotspot profiles (conservation suite, goldens, zero-perturbation)"
cargo test -q -p vt-tests --test hotspots

echo "== vt-bench CLI exit-code contract (vtprof/vtdiff/vtbench/vtsweep/vttrace)"
cargo test -q -p vt-bench --test cli_contract

echo "== vtprof --annotate/--flame smoke (per-PC profile artifacts)"
VTHOT_TMP="$(mktemp -d)"
cargo run -q --release -p vt-bench --bin vtprof -- bfs --annotate --flame \
  --sms 2 --out "$VTHOT_TMP" >/dev/null
for f in bfs.vt.hotspots.json bfs.vt.collapsed.txt bfs.vt.pcs.trace.json; do
  if [[ ! -s "$VTHOT_TMP/$f" ]]; then
    echo "lint: vtprof --annotate/--flame did not write $f" >&2
    exit 1
  fi
done
cargo run -q --release -p vt-bench --bin vtdiff -- --pc \
  "$VTHOT_TMP/bfs.vt.hotspots.json" "$VTHOT_TMP/bfs.vt.hotspots.json" \
  --assert-zero >/dev/null

# Bit-identity of profiled vs unprofiled stats is asserted exactly by
# `--test hotspots` above (profiling_never_perturbs_the_run); this is
# the wall-clock side: enabling the profiler must not blow up runtime.
# Min-of-3 against a generous 2x bound keeps the gate meaningful but
# robust to a loaded CI machine.
echo "== profiling overhead gate (profiled run within 2x of unprofiled)"
min_ns() {
  local best=
  for _ in 1 2 3; do
    local t0 t1
    t0=$(date +%s%N)
    cargo run -q --release -p vt-bench --bin vtprof -- sgemm \
      --sms 2 --out "$VTHOT_TMP" "$@" >/dev/null
    t1=$(date +%s%N)
    local dt=$((t1 - t0))
    if [[ -z "$best" || $dt -lt $best ]]; then best=$dt; fi
  done
  echo "$best"
}
plain_ns=$(min_ns)
prof_ns=$(min_ns --profile)
if ((prof_ns > 2 * plain_ns)); then
  echo "lint: profiling overhead gate failed:" \
    "profiled ${prof_ns}ns vs unprofiled ${plain_ns}ns (> 2x)" >&2
  exit 1
fi

echo "== vtdiff --assert-zero (two runs of the same build are cycle-identical)"
cargo run -q --release -p vt-bench --bin vtbench -- \
  --out "$VTBENCH_TMP/again.json" >/dev/null
cargo run -q --release -p vt-bench --bin vtdiff -- \
  "$VTBENCH_TMP/now.json" "$VTBENCH_TMP/again.json" --assert-zero >/dev/null

# Note: `cargo test -- --test-threads` parallelizes the *test harness*;
# engine parallelism is a separate axis (vtsweep --threads / VT_THREADS)
# and is what --check verifies against the sequential run below.
echo "== vtsweep --check (2-thread determinism smoke)"
cargo run -q --release -p vt-bench --bin vtsweep -- \
  spmv bfs --threads 2 --sms 4 --check >/dev/null

echo "== vtsweep --budget (truncation smoke: partial stats, no hang)"
cargo run -q --release -p vt-bench --bin vtsweep -- \
  spmv --arch vt --sms 2 --budget 2000 --check >/dev/null

echo "== vttrace --check (valid corpus accepted, corrupt corpus rejected)"
cargo run -q --release -p vt-bench --bin vttrace -- --check traces/*.trace >/dev/null
if cargo run -q --release -p vt-bench --bin vttrace -- \
  --check traces/corrupt/*.trace >/dev/null 2>&1; then
  echo "lint: vttrace --check accepted a corrupt trace" >&2
  exit 1
fi

echo "== trace round-trip + fuzz robustness (tests/tests/traces.rs)"
cargo test -q -p vt-tests --test traces

echo "== property suite (random kernels: lint-clean, all-arch completion)"
cargo test -q -p vt-tests --test properties

echo "== public API surface (tools/api.txt must match the source)"
if ! diff -u tools/api.txt <(tools/api_surface.sh); then
  echo "lint: public API changed; review the diff above and re-bless" >&2
  echo "      with tools/api_surface.sh --bless" >&2
  exit 1
fi

echo "lint: OK"
