//! Shared helpers for the workspace's integration tests.
#![forbid(unsafe_code)]

use vt_core::{Architecture, CoreConfig, Gpu, GpuConfig, MemConfig, Report};
use vt_isa::Kernel;

/// A 2-SM configuration that keeps integration-test runs fast while still
/// exercising multi-SM dispatch, the shared L2 and DRAM contention.
pub fn small_config(arch: Architecture) -> GpuConfig {
    GpuConfig {
        core: CoreConfig {
            num_sms: 2,
            ..CoreConfig::default()
        },
        mem: MemConfig::default(),
        arch,
    }
}

/// Runs `kernel` under `arch` on the small test configuration.
///
/// # Panics
///
/// Panics on simulation failure — integration-test kernels are valid by
/// construction.
pub fn run(arch: Architecture, kernel: &Kernel) -> Report {
    Gpu::new(small_config(arch))
        .run(kernel)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", kernel.name(), arch.label()))
}

/// All four architectures under comparison.
pub fn all_archs() -> [Architecture; 4] {
    [
        Architecture::Baseline,
        Architecture::virtual_thread(),
        Architecture::Ideal,
        Architecture::MemSwap(vt_core::MemSwapParams::default()),
    ]
}

pub mod golden {
    //! Exact-integer JSON snapshots of run statistics, shared by the
    //! golden-stats tests and anything else that wants a drift-sensitive
    //! fingerprint of a run. Every counter is emitted verbatim (no floats
    //! derived from them), so two snapshots are equal iff the underlying
    //! `RunStats`/`MemStats` are bit-identical.

    use vt_core::{Report, RunStats};
    use vt_json::Json;
    use vt_mem::MemStats;
    use vt_trace::{Gauge, Histogram};

    /// A histogram as exact integers: non-empty buckets as
    /// `[index, count]` pairs plus the count/sum/min/max counters. An
    /// empty histogram keeps its sentinel `min` (`u64::MAX`) so emptiness
    /// is visible in the snapshot.
    pub fn hist_json(h: &Histogram) -> Json {
        let buckets: Vec<Json> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| Json::Array(vec![Json::UInt(i as u64), Json::UInt(c)]))
            .collect();
        Json::object(vec![
            ("buckets".into(), Json::Array(buckets)),
            ("count".into(), Json::UInt(h.count)),
            ("sum".into(), Json::UInt(h.sum)),
            ("min".into(), Json::UInt(h.min)),
            ("max".into(), Json::UInt(h.max)),
        ])
    }

    /// A gauge's three exact counters.
    pub fn gauge_json(g: &Gauge) -> Json {
        Json::object(vec![
            ("samples".into(), Json::UInt(g.samples)),
            ("sum".into(), Json::UInt(g.sum)),
            ("max".into(), Json::UInt(g.max)),
        ])
    }

    /// Every `MemStats` field, exactly.
    pub fn mem_stats_json(m: &MemStats) -> Json {
        Json::object(vec![
            ("l1_accesses".into(), Json::UInt(m.l1_accesses)),
            ("l1_hits".into(), Json::UInt(m.l1_hits)),
            ("l1_misses".into(), Json::UInt(m.l1_misses)),
            ("l1_mshr_merged".into(), Json::UInt(m.l1_mshr_merged)),
            ("l1_stalls".into(), Json::UInt(m.l1_stalls)),
            ("stores".into(), Json::UInt(m.stores)),
            ("atomics".into(), Json::UInt(m.atomics)),
            ("l2_accesses".into(), Json::UInt(m.l2_accesses)),
            ("l2_hits".into(), Json::UInt(m.l2_hits)),
            ("l2_misses".into(), Json::UInt(m.l2_misses)),
            ("dram_reads".into(), Json::UInt(m.dram_reads)),
            ("dram_writes".into(), Json::UInt(m.dram_writes)),
            ("dram_row_hits".into(), Json::UInt(m.dram_row_hits)),
            ("dram_row_misses".into(), Json::UInt(m.dram_row_misses)),
            ("load_latency_sum".into(), Json::UInt(m.load_latency_sum)),
            ("loads_completed".into(), Json::UInt(m.loads_completed)),
            ("load_latency".into(), hist_json(&m.load_latency)),
            ("mshr_occupancy".into(), gauge_json(&m.mshr_occupancy)),
        ])
    }

    /// Every `RunStats` field, exactly (the metric series are omitted:
    /// golden runs never enable sampling).
    pub fn stats_json(s: &RunStats) -> Json {
        Json::object(vec![
            ("cycles".into(), Json::UInt(s.cycles)),
            ("warp_instrs".into(), Json::UInt(s.warp_instrs)),
            ("thread_instrs".into(), Json::UInt(s.thread_instrs)),
            (
                "divergent_branches".into(),
                Json::UInt(s.divergent_branches),
            ),
            ("barriers".into(), Json::UInt(s.barriers)),
            ("ctas_completed".into(), Json::UInt(s.ctas_completed)),
            ("issue_cycles".into(), Json::UInt(s.issue_cycles)),
            (
                "idle".into(),
                Json::object(vec![
                    ("no_warps".into(), Json::UInt(s.idle.no_warps)),
                    ("memory".into(), Json::UInt(s.idle.memory)),
                    ("pipeline".into(), Json::UInt(s.idle.pipeline)),
                    ("barrier".into(), Json::UInt(s.idle.barrier)),
                    ("swapping".into(), Json::UInt(s.idle.swapping)),
                    ("other".into(), Json::UInt(s.idle.other)),
                ]),
            ),
            (
                "empty".into(),
                Json::object(vec![
                    ("scheduling".into(), Json::UInt(s.empty.scheduling)),
                    ("capacity".into(), Json::UInt(s.empty.capacity)),
                    ("drain".into(), Json::UInt(s.empty.drain)),
                ]),
            ),
            (
                "occupancy".into(),
                Json::object(vec![
                    (
                        "resident_warp_cycles".into(),
                        Json::UInt(s.occupancy.resident_warp_cycles),
                    ),
                    (
                        "active_warp_cycles".into(),
                        Json::UInt(s.occupancy.active_warp_cycles),
                    ),
                    (
                        "resident_cta_cycles".into(),
                        Json::UInt(s.occupancy.resident_cta_cycles),
                    ),
                    (
                        "active_cta_cycles".into(),
                        Json::UInt(s.occupancy.active_cta_cycles),
                    ),
                    (
                        "reg_byte_cycles".into(),
                        Json::UInt(s.occupancy.reg_byte_cycles),
                    ),
                    (
                        "smem_byte_cycles".into(),
                        Json::UInt(s.occupancy.smem_byte_cycles),
                    ),
                    ("sm_cycles".into(), Json::UInt(s.occupancy.sm_cycles)),
                ]),
            ),
            (
                "swaps".into(),
                Json::object(vec![
                    ("swaps_out".into(), Json::UInt(s.swaps.swaps_out)),
                    ("swaps_in".into(), Json::UInt(s.swaps.swaps_in)),
                    (
                        "fresh_activations".into(),
                        Json::UInt(s.swaps.fresh_activations),
                    ),
                    (
                        "swap_busy_cycles".into(),
                        Json::UInt(s.swaps.swap_busy_cycles),
                    ),
                ]),
            ),
            ("mem".into(), mem_stats_json(&s.mem)),
            ("max_simt_depth".into(), Json::UInt(s.max_simt_depth as u64)),
            ("swap_duration".into(), hist_json(&s.swap_duration)),
            ("swap_gap".into(), hist_json(&s.swap_gap)),
            ("barrier_wait".into(), hist_json(&s.barrier_wait)),
            ("ldst_queue".into(), gauge_json(&s.ldst_queue)),
        ])
    }

    /// FNV-1a over the final memory image, so functional drift is caught
    /// even when it doesn't move a counter.
    pub fn image_fingerprint(words: &[u32]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// The full golden snapshot of one run.
    pub fn report_json(r: &Report) -> Json {
        Json::object(vec![
            ("kernel".into(), Json::Str(r.kernel.clone())),
            ("arch".into(), Json::Str(r.arch.label().to_string())),
            ("stats".into(), stats_json(&r.stats)),
            (
                "mem_image_words".into(),
                Json::UInt(r.mem_image.as_words().len() as u64),
            ),
            (
                "mem_image_fnv1a".into(),
                Json::Str(format!(
                    "{:016x}",
                    image_fingerprint(r.mem_image.as_words())
                )),
            ),
        ])
    }
}
