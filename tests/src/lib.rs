//! Shared helpers for the workspace's integration tests.

use vt_core::{Architecture, CoreConfig, Gpu, GpuConfig, MemConfig, Report};
use vt_isa::Kernel;

/// A 2-SM configuration that keeps integration-test runs fast while still
/// exercising multi-SM dispatch, the shared L2 and DRAM contention.
pub fn small_config(arch: Architecture) -> GpuConfig {
    GpuConfig {
        core: CoreConfig {
            num_sms: 2,
            ..CoreConfig::default()
        },
        mem: MemConfig::default(),
        arch,
    }
}

/// Runs `kernel` under `arch` on the small test configuration.
///
/// # Panics
///
/// Panics on simulation failure — integration-test kernels are valid by
/// construction.
pub fn run(arch: Architecture, kernel: &Kernel) -> Report {
    Gpu::new(small_config(arch))
        .run(kernel)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", kernel.name(), arch.label()))
}

/// All four architectures under comparison.
pub fn all_archs() -> [Architecture; 4] {
    [
        Architecture::Baseline,
        Architecture::virtual_thread(),
        Architecture::Ideal,
        Architecture::MemSwap(vt_core::MemSwapParams::default()),
    ]
}
