//! Property-based integration tests: random synthetic kernels and random
//! straight-line programs must agree between the cycle-level simulator
//! and the reference interpreter, and random architecture parameters must
//! preserve functional results.

use proptest::prelude::*;
use vt_core::{Architecture, SwapTrigger, VtParams};
use vt_isa::interp::Interpreter;
use vt_isa::op::{AluOp, Operand, Reg, Sreg};
use vt_isa::{Kernel, KernelBuilder};
use vt_tests::run;
use vt_workloads::{AccessPattern, SyntheticParams};

fn access_strategy() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Coalesced),
        (1u32..64).prop_map(AccessPattern::Strided),
        Just(AccessPattern::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn synthetic_kernels_match_interpreter(
        threads in prop_oneof![Just(32u32), Just(48), Just(64), Just(128)],
        ctas in 2u32..8,
        iters in 1u32..5,
        loads in 1u32..4,
        alu in 0u32..6,
        access in access_strategy(),
        barrier in any::<bool>(),
    ) {
        let p = SyntheticParams {
            name: "prop".to_string(),
            ctas,
            threads_per_cta: threads,
            regs_per_thread: 16,
            smem_bytes: if barrier { 256 } else { 0 },
            iters,
            loads_per_iter: loads,
            alu_per_load: alu,
            access,
            barrier_per_iter: barrier,
        };
        let kernel = p.build();
        let reference = Interpreter::new(&kernel).unwrap().run().unwrap();
        for arch in [Architecture::Baseline, Architecture::virtual_thread()] {
            let report = run(arch, &kernel);
            prop_assert_eq!(
                report.mem_image.as_words(),
                reference.mem().as_words(),
                "arch {}", arch.label()
            );
        }
    }

    #[test]
    fn random_vt_parameters_preserve_functionality(
        max_virtual in prop_oneof![Just(None), (9u32..40).prop_map(Some)],
        buffer_width in 1u32..64,
        stack_entries in 1u32..32,
        trigger in prop_oneof![
            Just(SwapTrigger::AllWarpsStalled),
            Just(SwapTrigger::AnyWarpStalled),
            Just(SwapTrigger::Never),
        ],
    ) {
        let kernel = SyntheticParams {
            ctas: 24,
            access: AccessPattern::Random,
            ..SyntheticParams::default()
        }
        .build();
        let reference = Interpreter::new(&kernel).unwrap().run().unwrap();
        let arch = Architecture::VirtualThread(VtParams {
            max_virtual_ctas: max_virtual,
            buffer_words_per_cycle: buffer_width,
            stack_entries_per_warp: stack_entries,
            trigger,
            ..VtParams::default()
        });
        let report = run(arch, &kernel);
        prop_assert_eq!(report.mem_image.as_words(), reference.mem().as_words());
        prop_assert_eq!(report.stats.ctas_completed, 24);
    }
}

/// A random straight-line ALU program over a handful of registers.
fn straight_line(ops: &[(u8, u8, u8, u8)]) -> Kernel {
    const REGS: u16 = 6;
    let mut b = KernelBuilder::new("straight");
    let out = b.alloc_global(64 * REGS as usize);
    let regs: Vec<Reg> = (0..REGS).map(|_| b.reg()).collect();
    // Seed registers with thread-dependent values.
    for (i, r) in regs.iter().enumerate() {
        b.mad(*r, Operand::Sreg(Sreg::Tid), Operand::Imm(i as u32 + 1), Operand::Imm(7));
    }
    let table: &[AluOp] = &[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Min,
        AluOp::Max,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::SetLt,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::MulHi,
    ];
    for &(op, d, a, c) in ops {
        let op = table[op as usize % table.len()];
        let dst = regs[d as usize % regs.len()];
        let a = Operand::Reg(regs[a as usize % regs.len()]);
        let c = Operand::Reg(regs[c as usize % regs.len()]);
        b.emit(vt_isa::Instr::Alu { op, dst, a, b: c });
    }
    // Dump every register of every thread.
    let off = b.reg();
    for (i, r) in regs.iter().enumerate() {
        b.mad(
            off,
            Operand::Sreg(Sreg::Tid),
            Operand::Imm(REGS as u32 * 4),
            Operand::Imm(i as u32 * 4),
        );
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(*r));
    }
    b.build(2, 32).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_alu_programs_match_interpreter(
        ops in proptest::collection::vec(any::<(u8, u8, u8, u8)>(), 1..40),
    ) {
        let kernel = straight_line(&ops);
        let reference = Interpreter::new(&kernel).unwrap().run().unwrap();
        let report = run(Architecture::Baseline, &kernel);
        prop_assert_eq!(report.mem_image.as_words(), reference.mem().as_words());
    }
}
