//! Randomized integration tests: random synthetic kernels and random
//! straight-line programs must agree between the cycle-level simulator
//! and the reference interpreter, and random architecture parameters must
//! preserve functional results. Driven by the deterministic
//! [`vt_prng::Prng`] so runs are reproducible offline.

use vt_core::{Architecture, Pool, RunRequest, Session, SwapTrigger, VtParams};
use vt_isa::interp::Interpreter;
use vt_isa::op::{AluOp, Operand, Reg, Sreg};
use vt_isa::{Kernel, KernelBuilder};
use vt_prng::Prng;
use vt_tests::{run, small_config};
use vt_trace::{BufSink, SwapDir, TraceEvent};
use vt_workloads::{AccessPattern, SyntheticParams};

fn gen_access(r: &mut Prng) -> AccessPattern {
    match r.gen_range(0..3) {
        0 => AccessPattern::Coalesced,
        1 => AccessPattern::Strided(r.gen_range(1..64)),
        _ => AccessPattern::Random,
    }
}

#[test]
fn synthetic_kernels_match_interpreter() {
    let mut r = Prng::new(0x515);
    for case in 0..12 {
        let barrier = r.gen_bool(0.5);
        let p = SyntheticParams {
            name: "prop".to_string(),
            ctas: r.gen_range(2..8),
            threads_per_cta: *r.choose(&[32u32, 48, 64, 128]),
            regs_per_thread: 16,
            smem_bytes: if barrier { 256 } else { 0 },
            iters: r.gen_range(1..5),
            loads_per_iter: r.gen_range(1..4),
            alu_per_load: r.gen_range(0..6),
            access: gen_access(&mut r),
            barrier_per_iter: barrier,
        };
        let kernel = p.build();
        let reference = Interpreter::new(&kernel).unwrap().run().unwrap();
        for arch in [Architecture::Baseline, Architecture::virtual_thread()] {
            let report = run(arch, &kernel);
            assert_eq!(
                report.mem_image.as_words(),
                reference.mem().as_words(),
                "case {case}: arch {} params {p:?}",
                arch.label()
            );
        }
    }
}

/// Breadth over depth: ~200 random synthetic kernels must all (a) lint
/// clean of error-severity diagnostics and (b) run to completion under
/// all four architectures. Catches generator/analyzer/scheduler
/// mismatches the 12-case deep tests above cannot reach.
#[test]
fn two_hundred_random_kernels_lint_clean_and_complete_everywhere() {
    let mut r = Prng::new(0xc0de);
    for case in 0..200 {
        let barrier = r.gen_bool(0.4);
        let p = SyntheticParams {
            name: format!("prop-{case}"),
            ctas: r.gen_range(1..6),
            threads_per_cta: *r.choose(&[32u32, 48, 64, 96]),
            regs_per_thread: *r.choose(&[8u16, 16, 24, 48]),
            smem_bytes: if barrier {
                *r.choose(&[128u32, 256, 1024])
            } else {
                0
            },
            iters: r.gen_range(1..3),
            loads_per_iter: r.gen_range(1..3),
            alu_per_load: r.gen_range(0..5),
            access: gen_access(&mut r),
            barrier_per_iter: barrier,
        };
        let kernel = p.build();
        let errors: Vec<_> = vt_analysis::analyze(&kernel)
            .diagnostics
            .iter()
            .filter(|d| d.severity == vt_analysis::Severity::Error)
            .cloned()
            .collect();
        assert!(errors.is_empty(), "case {case} ({p:?}): {errors:?}");
        for arch in vt_tests::all_archs() {
            let report = run(arch, &kernel);
            assert_eq!(
                report.stats.ctas_completed,
                u64::from(p.ctas),
                "case {case} under {}: did not run to completion ({p:?})",
                arch.label()
            );
        }
    }
}

#[test]
fn random_vt_parameters_preserve_functionality() {
    let mut r = Prng::new(0xf7a);
    let kernel = SyntheticParams {
        ctas: 24,
        access: AccessPattern::Random,
        ..SyntheticParams::default()
    }
    .build();
    let reference = Interpreter::new(&kernel).unwrap().run().unwrap();
    for case in 0..12 {
        let max_virtual = if r.gen_bool(0.3) {
            None
        } else {
            Some(r.gen_range(9..40))
        };
        let arch = Architecture::VirtualThread(VtParams {
            max_virtual_ctas: max_virtual,
            buffer_words_per_cycle: r.gen_range(1..64),
            stack_entries_per_warp: r.gen_range(1..32),
            trigger: *r.choose(&[
                SwapTrigger::AllWarpsStalled,
                SwapTrigger::AnyWarpStalled,
                SwapTrigger::Never,
            ]),
            ..VtParams::default()
        });
        let report = run(arch, &kernel);
        assert_eq!(
            report.mem_image.as_words(),
            reference.mem().as_words(),
            "case {case}: {max_virtual:?}"
        );
        assert_eq!(report.stats.ctas_completed, 24);
    }
}

/// Random synthetic kernels must be thread-count invariant: the parallel
/// engine at 2, 4 and 8 workers must reproduce the sequential run's
/// statistics and final memory bit-for-bit, whatever shape the kernel
/// takes.
#[test]
fn thread_count_invariance_on_random_kernels() {
    let mut r = Prng::new(0x9a7);
    for case in 0..8 {
        let barrier = r.gen_bool(0.5);
        let p = SyntheticParams {
            name: "par-prop".to_string(),
            ctas: r.gen_range(4..16),
            threads_per_cta: *r.choose(&[32u32, 64, 96]),
            regs_per_thread: 16,
            smem_bytes: if barrier { 256 } else { 0 },
            iters: r.gen_range(1..4),
            loads_per_iter: r.gen_range(1..4),
            alu_per_load: r.gen_range(0..5),
            access: gen_access(&mut r),
            barrier_per_iter: barrier,
        };
        let kernel = p.build();
        for arch in [Architecture::Baseline, Architecture::virtual_thread()] {
            let seq = run(arch, &kernel);
            for threads in [2, 4, 8] {
                let mut session = Session::new(small_config(arch)).with_pool(Pool::new(threads));
                let par = session
                    .run(RunRequest::kernel(&kernel))
                    .and_then(|o| o.completed())
                    .unwrap_or_else(|e| panic!("case {case}: {e}"))
                    .remove(0);
                assert_eq!(
                    par.stats,
                    seq.stats,
                    "case {case}: stats drift at {threads} threads under {} ({p:?})",
                    arch.label()
                );
                assert_eq!(
                    par.mem_image,
                    seq.mem_image,
                    "case {case}: memory drift at {threads} threads under {}",
                    arch.label()
                );
            }
        }
    }
}

/// The swap protocol survives the parallel engine: a CTA may only enter
/// the active phase once its context transfer has completed — every
/// `CtaActivate` must be preceded by a `SwapEnd{In}` for the same
/// (SM, slot, CTA), with no unconsumed transfer left over.
#[test]
fn swap_protocol_holds_under_parallel_engine() {
    let mut r = Prng::new(0x3c1);
    let mut activations = 0u64;
    for case in 0..6 {
        let p = SyntheticParams {
            name: "swap-prop".to_string(),
            ctas: r.gen_range(16..40),
            threads_per_cta: *r.choose(&[32u32, 64]),
            regs_per_thread: 16,
            smem_bytes: 0,
            iters: r.gen_range(2..5),
            loads_per_iter: r.gen_range(2..5),
            alu_per_load: r.gen_range(0..3),
            access: AccessPattern::Random,
            barrier_per_iter: false,
        };
        let kernel = p.build();
        let mut events = Vec::new();
        let mut session = Session::new(small_config(Architecture::virtual_thread()))
            .with_pool(Pool::new(4))
            .with_sink(BufSink(&mut events));
        session
            .run(RunRequest::kernel(&kernel))
            .and_then(|o| o.completed())
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        drop(session);

        let mut ready: Vec<(u32, u32, u32)> = Vec::new();
        for e in &events {
            match e.ev {
                TraceEvent::SwapEnd {
                    sm,
                    cta_slot,
                    cta_id,
                    dir: SwapDir::In,
                } => ready.push((sm, cta_slot, cta_id)),
                TraceEvent::CtaActivate {
                    sm,
                    cta_slot,
                    cta_id,
                } => {
                    let key = (sm, cta_slot, cta_id);
                    let pos = ready.iter().position(|&k| k == key).unwrap_or_else(|| {
                        panic!(
                            "case {case}: CTA {cta_id} activated on SM {sm} slot \
                             {cta_slot} at t={} without a completed swap-in",
                            e.t
                        )
                    });
                    ready.swap_remove(pos);
                    activations += 1;
                }
                _ => {}
            }
        }
    }
    assert!(
        activations > 0,
        "cases never activated a CTA — the invariant was tested vacuously"
    );
}

/// A random straight-line ALU program over a handful of registers.
fn straight_line(ops: &[(u8, u8, u8, u8)]) -> Kernel {
    const REGS: u16 = 6;
    let mut b = KernelBuilder::new("straight");
    let out = b.alloc_global(64 * REGS as usize);
    let regs: Vec<Reg> = (0..REGS).map(|_| b.reg()).collect();
    // Seed registers with thread-dependent values.
    for (i, r) in regs.iter().enumerate() {
        b.mad(
            *r,
            Operand::Sreg(Sreg::Tid),
            Operand::Imm(i as u32 + 1),
            Operand::Imm(7),
        );
    }
    let table: &[AluOp] = &[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Min,
        AluOp::Max,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::SetLt,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::MulHi,
    ];
    for &(op, d, a, c) in ops {
        let op = table[op as usize % table.len()];
        let dst = regs[d as usize % regs.len()];
        let a = Operand::Reg(regs[a as usize % regs.len()]);
        let c = Operand::Reg(regs[c as usize % regs.len()]);
        b.emit(vt_isa::Instr::Alu { op, dst, a, b: c });
    }
    // Dump every register of every thread.
    let off = b.reg();
    for (i, r) in regs.iter().enumerate() {
        b.mad(
            off,
            Operand::Sreg(Sreg::Tid),
            Operand::Imm(REGS as u32 * 4),
            Operand::Imm(i as u32 * 4),
        );
        b.st_global(Operand::Reg(off), out as i32, Operand::Reg(*r));
    }
    b.build(2, 32).unwrap()
}

#[test]
fn random_alu_programs_match_interpreter() {
    let mut r = Prng::new(0xa1b);
    for case in 0..24 {
        let ops: Vec<(u8, u8, u8, u8)> = (0..r.gen_range_usize(1..40))
            .map(|_| {
                let w = r.next_u32();
                (w as u8, (w >> 8) as u8, (w >> 16) as u8, (w >> 24) as u8)
            })
            .collect();
        let kernel = straight_line(&ops);
        let reference = Interpreter::new(&kernel).unwrap().run().unwrap();
        let report = run(Architecture::Baseline, &kernel);
        assert_eq!(
            report.mem_image.as_words(),
            reference.mem().as_words(),
            "case {case}"
        );
    }
}
