//! The static analyzer against the real workload suite: every shipped
//! kernel must lint clean of errors, the analyzer's register-pressure
//! estimate must stay within the declared footprint, and the assembler
//! must round-trip every builder-generated program.

use vt_analysis::{analyze, Severity};
use vt_isa::asm::{assemble_program, disassemble};
use vt_prng::Prng;
use vt_workloads::{full_suite, AccessPattern, Scale, SyntheticParams};

#[test]
fn suite_kernels_have_no_analysis_errors() {
    for w in full_suite(&Scale::test()) {
        let report = analyze(&w.kernel);
        let errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", w.name);
    }
}

#[test]
fn suite_register_declarations_cover_the_analyzer_estimate() {
    for w in full_suite(&Scale::test()) {
        let report = analyze(&w.kernel);
        assert!(
            report.used_regs <= report.declared_regs,
            "{}: uses r0..r{} but declares only {}",
            w.name,
            report.used_regs.saturating_sub(1),
            report.declared_regs,
        );
        assert!(
            report.register_pressure <= report.declared_regs,
            "{}: pressure {} exceeds declared {}",
            w.name,
            report.register_pressure,
            report.declared_regs,
        );
        // Pressure never exceeds the number of distinct registers.
        assert!(report.register_pressure <= report.used_regs, "{}", w.name);
    }
}

#[test]
fn suite_barrier_counts_match_kernel_structure() {
    for w in full_suite(&Scale::test()) {
        let report = analyze(&w.kernel);
        assert_eq!(report.barrier_intervals, report.barriers + 1, "{}", w.name);
    }
}

#[test]
fn assembler_round_trips_every_suite_kernel() {
    for w in full_suite(&Scale::test()) {
        let text = disassemble(w.kernel.program());
        let back = assemble_program(&text)
            .unwrap_or_else(|e| panic!("{}: reassembly failed: {e}", w.name));
        assert_eq!(
            &back,
            w.kernel.program(),
            "{}: round trip changed the program",
            w.name
        );
    }
}

#[test]
fn assembler_round_trips_random_synthetic_kernels() {
    let mut r = Prng::new(0xa5a5);
    for case in 0..24 {
        let barrier = r.gen_bool(0.5);
        let p = SyntheticParams {
            name: format!("rt{case}"),
            ctas: r.gen_range(1..6),
            threads_per_cta: *r.choose(&[32u32, 64, 96]),
            regs_per_thread: r.gen_range(4..32) as u16,
            smem_bytes: if barrier { 256 } else { 0 },
            iters: r.gen_range(1..4),
            loads_per_iter: r.gen_range(1..4),
            alu_per_load: r.gen_range(0..5),
            access: match r.gen_range(0..3) {
                0 => AccessPattern::Coalesced,
                1 => AccessPattern::Strided(r.gen_range(1..32)),
                _ => AccessPattern::Random,
            },
            barrier_per_iter: barrier,
        };
        let kernel = p.build();
        let text = disassemble(kernel.program());
        let back = assemble_program(&text)
            .unwrap_or_else(|e| panic!("case {case}: reassembly failed: {e}"));
        assert_eq!(
            &back,
            kernel.program(),
            "case {case}: round trip changed the program"
        );
    }
}
