//! The trace frontend end-to-end: the committed corpus parses, lowers,
//! lints clean and replays bit-identically to its recorded fingerprints
//! at every worker count; the corrupt corpus is rejected with a
//! `TraceError` (never a panic); and fuzz-style truncation/mutation of
//! valid sources can never panic the parser or the lowerer.

use std::path::{Path, PathBuf};
use vt_analysis::{analyze, Severity};
use vt_core::{Architecture, GpuConfig, Pool, Report, RunRequest, Session};
use vt_isa::interp::Interpreter;
use vt_json::Json;
use vt_prng::Prng;
use vt_tests::all_archs;
use vt_traces::{parse_file, parse_str, Trace};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..")
}

fn corpus(dir: &str) -> Vec<(String, PathBuf)> {
    let mut files: Vec<(String, PathBuf)> = std::fs::read_dir(repo_root().join(dir))
        .unwrap_or_else(|e| panic!("{dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .map(|p| (p.file_name().unwrap().to_string_lossy().into_owned(), p))
        .collect();
    files.sort();
    files
}

fn load(path: &Path) -> Trace {
    parse_file(path.to_str().unwrap()).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn valid_corpus_parses_lowers_and_lints_clean() {
    let files = corpus("traces");
    assert!(files.len() >= 3, "corpus shrank: {files:?}");
    for (name, path) in &files {
        let trace = load(path);
        let kernel = trace.lower().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(kernel.name(), trace.name, "{name}");
        assert_eq!(kernel.num_ctas(), trace.grid, "{name}");
        assert_eq!(kernel.threads_per_cta(), trace.block, "{name}");
        let errors: Vec<_> = analyze(&kernel)
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .cloned()
            .collect();
        assert!(
            errors.is_empty(),
            "{name}: lowered kernel lints dirty: {errors:?}"
        );
    }
}

/// The replay program is pure data-driven lock-step code, so the
/// functional image must agree between the reference interpreter and
/// the timing simulator under every architecture. (The corpus is
/// race-free by construction; see tools/gen_traces.py.)
#[test]
fn corpus_replay_is_functionally_identical_across_archs() {
    for (name, path) in corpus("traces") {
        let kernel = load(&path).lower().unwrap();
        let reference = Interpreter::new(&kernel).unwrap().run().unwrap();
        for arch in all_archs() {
            let report = vt_tests::run(arch, &kernel);
            assert_eq!(
                report.mem_image.as_words(),
                reference.mem().as_words(),
                "{name} under {}",
                arch.label()
            );
        }
    }
}

#[test]
fn corrupt_corpus_is_rejected_never_panics() {
    let files = corpus("traces/corrupt");
    assert!(files.len() >= 15, "corrupt corpus shrank: {files:?}");
    for (name, path) in &files {
        let err = parse_file(path.to_str().unwrap())
            .and_then(|t| t.lower())
            .expect_err(&format!("{name}: corrupt trace was accepted"));
        // Every rejection renders a diagnostic.
        assert!(!err.to_string().is_empty(), "{name}");
    }
}

/// Chopping a valid trace at any byte offset must yield `Ok` or a
/// `TraceError` — never a panic — through both parse and lower.
#[test]
fn truncation_fuzz_never_panics() {
    for (name, path) in corpus("traces") {
        let text = std::fs::read_to_string(&path).unwrap();
        let mut rejected = 0usize;
        for cut in (0..text.len()).step_by(3) {
            let prefix = &text[..cut];
            match parse_str(prefix) {
                Ok(t) => {
                    let _ = t.lower();
                }
                Err(_) => rejected += 1,
            }
        }
        assert!(rejected > 0, "{name}: no truncation was ever rejected");
    }
}

/// Random byte mutations of a valid source (bit flips, garbage bytes,
/// token swaps) must never panic the pipeline.
#[test]
fn mutation_fuzz_never_panics() {
    let sources: Vec<String> = corpus("traces")
        .iter()
        .map(|(_, p)| std::fs::read_to_string(p).unwrap())
        .collect();
    let mut r = Prng::new(0xf022);
    for case in 0..300 {
        let base = &sources[r.gen_range_usize(0..sources.len())];
        let mut bytes = base.clone().into_bytes();
        for _ in 0..r.gen_range(1..8) {
            let at = r.gen_range_usize(0..bytes.len());
            bytes[at] = match r.gen_range(0..4) {
                0 => b'\n',
                1 => (r.next_u32() & 0x7f) as u8,
                2 => b'f',
                _ => (r.next_u32() & 0xff) as u8,
            };
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(t) = parse_str(&mutated) {
            let _ = t.lower(); // either outcome is fine; panicking is not
        }
        // Also splice whole-line deletions/duplications.
        if case % 3 == 0 {
            let lines: Vec<&str> = base.lines().collect();
            let at = r.gen_range_usize(0..lines.len());
            let mut spliced: Vec<&str> = lines.clone();
            if r.gen_bool(0.5) {
                spliced.remove(at);
            } else {
                spliced.insert(at, lines[at]);
            }
            if let Ok(t) = parse_str(&spliced.join("\n")) {
                let _ = t.lower();
            }
        }
    }
}

/// FNV-1a over the final memory image — must match `vttrace --run`'s
/// `mem_fnv` field (same algorithm in crates/bench/src/bin/vttrace.rs).
fn mem_digest(report: &Report) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in report.mem_image.as_words() {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Round-trip gate: replaying the committed corpus under the pinned
/// configuration reproduces the committed fingerprints exactly, at 1, 2
/// and 4 workers. A mismatch means the simulator's timing or functional
/// behaviour drifted (re-record with `vttrace --run --json` only when
/// that is intended).
#[test]
fn committed_fingerprints_reproduce_at_1_2_4_workers() {
    let text = std::fs::read_to_string(repo_root().join("traces/fingerprints.json")).unwrap();
    let json = Json::parse(&text).unwrap();
    assert_eq!(
        json.get("config")
            .and_then(|c| c.get("arch"))
            .and_then(Json::as_str),
        Some("vt")
    );
    let sms = json
        .get("config")
        .and_then(|c| c.get("sms"))
        .and_then(Json::as_u64)
        .unwrap() as u32;
    let Some(Json::Object(entries)) = json.get("traces") else {
        panic!("fingerprints.json has no traces object");
    };
    assert!(entries.len() >= 3);
    for (rel, fp) in entries {
        let kernel = load(&repo_root().join(rel)).lower().unwrap();
        let want = |k: &str| fp.get(k).and_then(Json::as_u64).unwrap();
        for threads in [1usize, 2, 4] {
            let mut cfg = GpuConfig::with_arch(Architecture::virtual_thread());
            cfg.core.num_sms = sms;
            let mut session = Session::new(cfg);
            if threads > 1 {
                session = session.with_pool(Pool::new(threads));
            }
            let report = session
                .run(RunRequest::kernel(&kernel))
                .and_then(|o| o.completed())
                .unwrap_or_else(|e| panic!("{rel}: {e}"))
                .remove(0);
            let label = format!("{rel} at {threads} worker(s)");
            assert_eq!(report.stats.cycles, want("cycles"), "{label}");
            assert_eq!(report.stats.warp_instrs, want("warp_instrs"), "{label}");
            assert_eq!(report.stats.thread_instrs, want("thread_instrs"), "{label}");
            assert_eq!(report.stats.barriers, want("barriers"), "{label}");
            let fnv = fp.get("mem_fnv").and_then(Json::as_str).unwrap();
            assert_eq!(
                format!("{:016x}", mem_digest(&report)),
                fnv,
                "{label}: functional image drifted"
            );
        }
    }
}
