//! Static-vs-dynamic oracle for the occupancy model.
//!
//! The static model (`vt_analysis::occupancy` / `vt_analysis::model`)
//! predicts, per kernel × architecture, the peak number of resident
//! CTAs an SM will host and whether Virtual Thread should improve
//! throughput. This file cross-validates those predictions against the
//! timing simulator:
//!
//! * the static resident-CTA bound must equal the dynamically observed
//!   peak residency (from the windowed `resident_ctas` metric series),
//!   exactly, for every suite kernel × architecture;
//! * the scheduling-limited classification must predict whether VT
//!   improves measured IPC;
//! * the per-architecture residency policies in `vt_analysis` must
//!   agree with `vt_core::Architecture`'s lowering to the simulator's
//!   admission policy, so the two tables cannot drift apart;
//! * on random synthetic kernels, the whole pipeline never panics and
//!   its bounds stay mutually consistent (property test).
//!
//! The oracle runs under deliberately *shrunken* SM limits: at the
//! defaults, `Scale::test()` grids are too small for any bound to bind,
//! and nothing would be validated.

use vt_core::{Architecture, CoreConfig, GpuConfig, MemConfig, Report, RunRequest, Session};
use vt_isa::SmLimits;
use vt_prng::Prng;
use vt_sim::AdmissionPolicy;
use vt_workloads::{full_suite, suite, AccessPattern, Scale, SyntheticParams};

use vt_analysis::{analyze, model, standard_archs, ModelConfig, OccupancyModel, ResidencyModel};

/// Shrunken limits under which every suite kernel still launches (the
/// largest CTA needs 24 KiB of registers and 8 KiB of shared memory)
/// but the bounds actually bind at test scale: 2 CTA slots, 8 warp
/// slots, 48 KiB register file, 16 KiB shared memory.
fn oracle_limits() -> SmLimits {
    SmLimits {
        max_warps_per_sm: 8,
        max_ctas_per_sm: 2,
        regfile_bytes: 48 * 1024,
        smem_bytes: 16 * 1024,
    }
}

/// One SM so the whole grid lands on it and `ctas_assigned` is exact;
/// a short metrics window so the residency plateau is always sampled.
fn oracle_config(arch: Architecture) -> GpuConfig {
    let mut core = CoreConfig::from_limits(oracle_limits());
    core.num_sms = 1;
    core.metrics_window = Some(32);
    GpuConfig {
        core,
        mem: MemConfig::default(),
        arch,
    }
}

fn oracle_scale() -> Scale {
    Scale { ctas: 12, iters: 2 }
}

fn run_oracle(arch: Architecture, kernel: &vt_isa::Kernel) -> Report {
    Session::new(oracle_config(arch))
        .run(RunRequest::kernel(kernel))
        .and_then(|o| o.completed())
        .unwrap_or_else(|e| panic!("{} under {}: {e}", kernel.name(), arch.label()))
        .remove(0)
}

/// Peak of the per-SM `resident_ctas` level series over the whole run.
fn observed_peak_residency(report: &Report) -> u64 {
    report
        .stats
        .metrics()
        .expect("metrics enabled")
        .get("resident_ctas", Some(0))
        .expect("per-SM resident_ctas series")
        .values()
        .iter()
        .copied()
        .max()
        .expect("at least one sealed window")
}

/// The analysis-side residency policy for a `vt_core` architecture,
/// looked up by the shared label.
fn analysis_policy(arch: &Architecture) -> ResidencyModel {
    standard_archs()
        .iter()
        .find(|a| a.label == arch.label())
        .unwrap_or_else(|| panic!("no ArchModel labelled {}", arch.label()))
        .residency
}

/// **The oracle**: for every suite kernel × architecture, the static
/// resident-CTA bound (grid-clamped) equals the dynamically observed
/// peak residency. Exact equality — a one-CTA discrepancy means the
/// static arithmetic and the admission check have drifted apart.
#[test]
fn static_bound_matches_observed_peak_residency() {
    let limits = oracle_limits();
    for w in full_suite(&oracle_scale()) {
        let occ = OccupancyModel::compute(&limits, &w.kernel);
        for arch in vt_tests::all_archs() {
            let predicted = occ.predicted_peak(&analysis_policy(&arch), w.kernel.num_ctas());
            let report = run_oracle(arch, &w.kernel);
            let observed = observed_peak_residency(&report);
            assert_eq!(
                u64::from(predicted),
                observed,
                "{} under {}: static bound vs observed peak (bounds {:?})",
                w.name,
                arch.label(),
                occ.bounds,
            );
        }
    }
}

/// The scheduling-limited classification predicts whether VT improves
/// measured IPC: residency headroom ⇒ VT is strictly faster; no
/// headroom ⇒ VT tracks the baseline closely (it runs the very same
/// schedule, plus at most some activation bookkeeping).
#[test]
fn scheduling_classification_predicts_vt_ipc_gain() {
    let limits = oracle_limits();
    for w in full_suite(&oracle_scale()) {
        let occ = OccupancyModel::compute(&limits, &w.kernel);
        let headroom = occ.bounds.capacity().min(w.kernel.num_ctas()) > occ.bounds.baseline();
        // Consistency of the classification itself: strictly binding
        // scheduling limit ⟺ capacity headroom exists at all.
        assert_eq!(
            occ.bounds.capacity() > occ.bounds.baseline(),
            occ.limiter.is_scheduling(),
            "{}: limiter {:?} vs bounds {:?}",
            w.name,
            occ.limiter,
            occ.bounds,
        );

        let base = run_oracle(Architecture::Baseline, &w.kernel);
        let vt = run_oracle(Architecture::virtual_thread(), &w.kernel);
        assert_eq!(
            base.stats.thread_instrs, vt.stats.thread_instrs,
            "{}: same work under both architectures",
            w.name
        );
        let speedup = base.stats.cycles as f64 / vt.stats.cycles as f64;
        if headroom {
            assert!(
                speedup > 1.02,
                "{}: scheduling-limited (base {} → vt {} CTAs) but VT speedup is {speedup:.3}",
                w.name,
                occ.bounds.baseline(),
                occ.bounds.capacity(),
            );
        } else {
            assert!(
                (0.95..=1.05).contains(&speedup),
                "{}: no residency headroom but VT changed cycles by {speedup:.3}×",
                w.name,
            );
        }
    }
}

/// The static limiter predicts which *empty* cycle-accounting bucket
/// the simulator charges. Under the baseline's scheduling+capacity
/// admission, empty SM-cycles with work left land in `empty_scheduling`
/// exactly when the static limiter is a scheduling-structure shortage,
/// and in `empty_capacity` otherwise — the other bucket stays zero for
/// the whole run. Under VT's capacity-only admission the scheduling
/// limit does not exist, so its bucket can never be charged. (The
/// dispatch-after-tick cycle ordering guarantees at least one empty
/// pre-dispatch cycle per run, so the positive assertions are never
/// vacuous.)
#[test]
fn static_limiter_predicts_dynamic_empty_bucket() {
    let limits = oracle_limits();
    for w in full_suite(&oracle_scale()) {
        let scheduling_limited = limits.bounds(&w.kernel).limiter().is_scheduling();
        let base = run_oracle(Architecture::Baseline, &w.kernel);
        let e = &base.stats.empty;
        if scheduling_limited {
            assert!(
                e.scheduling > 0,
                "{}: scheduling-limited but no cycle charged to the limit",
                w.name
            );
            assert_eq!(
                e.capacity, 0,
                "{}: scheduling-limited kernels never starve on capacity",
                w.name
            );
        } else {
            assert!(
                e.capacity > 0,
                "{}: capacity-limited but no cycle charged to it",
                w.name
            );
            assert_eq!(
                e.scheduling, 0,
                "{}: capacity-limited kernels never starve on the scheduling limit",
                w.name
            );
        }

        let vt = run_oracle(Architecture::virtual_thread(), &w.kernel);
        assert_eq!(
            vt.stats.empty.scheduling, 0,
            "{}: capacity-only admission has no scheduling limit to charge",
            w.name
        );
        assert!(
            vt.stats.empty.capacity > 0,
            "{}: the pre-dispatch cycle is capacity-charged under VT",
            w.name
        );
    }
}

/// The static policy table and `vt_core::Architecture`'s lowering to
/// the simulator agree variant-by-variant, so the mirrored
/// `ResidencyModel` cannot drift from `AdmissionPolicy`.
#[test]
fn analysis_policies_agree_with_core_lowering() {
    let core = CoreConfig::from_limits(oracle_limits());
    let mem = MemConfig::default();
    let kernel = &suite(&Scale::test())[0].kernel;
    for arch in vt_tests::all_archs() {
        let lowered = arch.residency_for(kernel, &core, &mem).admission;
        let modelled = analysis_policy(&arch);
        match (modelled, lowered) {
            (ResidencyModel::SchedulingAndCapacity, AdmissionPolicy::SchedulingAndCapacity) => {}
            (
                ResidencyModel::CapacityOnly {
                    max_resident_ctas: m,
                },
                AdmissionPolicy::CapacityOnly {
                    max_resident_ctas: l,
                },
            ) => assert_eq!(m, l, "{}: context-buffer caps disagree", arch.label()),
            (m, l) => panic!(
                "{}: analysis models {m:?} but core lowers to {l:?}",
                arch.label()
            ),
        }
    }
}

/// Property test: the full static pipeline (lints and performance
/// model) never panics on random synthetic kernels, and the model's
/// bounds are mutually consistent.
#[test]
fn model_never_panics_and_bounds_are_consistent_on_random_kernels() {
    let cfg = ModelConfig::default();
    let mut rng = Prng::new(0x0c0a_1e5c_e0de);
    for case in 0..60 {
        let access = match rng.gen_range(0..3) {
            0 => AccessPattern::Coalesced,
            1 => AccessPattern::Strided(rng.gen_range(1..40)),
            _ => AccessPattern::Random,
        };
        let p = SyntheticParams {
            name: format!("prop-{case}"),
            ctas: rng.gen_range(1..8),
            threads_per_cta: 32 * rng.gen_range(1..9),
            regs_per_thread: rng.gen_range(8..64) as u16,
            smem_bytes: 256 * rng.gen_range(0..32),
            iters: rng.gen_range(1..4),
            loads_per_iter: rng.gen_range(1..4),
            alu_per_load: rng.gen_range(0..8),
            access,
            barrier_per_iter: rng.gen_bool(0.5),
        };
        let kernel = p.build();

        // Neither pass may panic.
        let report = analyze(&kernel);
        let m = model(&kernel, &cfg);

        let b = &m.occupancy.bounds;
        let baseline = b.baseline();
        let capacity = b.capacity();
        assert!(baseline >= 1, "{}: every suite-shaped kernel fits", p.name);
        assert!(baseline <= b.by_cta_slots, "{}", p.name);
        assert!(baseline <= b.by_warp_slots, "{}", p.name);
        assert!(baseline <= b.by_registers, "{}", p.name);
        assert!(baseline <= b.by_shared_memory, "{}", p.name);
        assert!(
            capacity >= baseline,
            "{}: VT never reduces residency",
            p.name
        );
        assert!(
            m.residency_gain() >= 1.0 - 1e-9,
            "{}: gain {} < 1",
            p.name,
            m.residency_gain()
        );

        // Per-arch predictions agree with the policies they cite, and
        // the grid clamp holds.
        for a in &m.archs {
            assert_eq!(
                a.resident_bound,
                a.residency.resident_bound(b),
                "{}",
                p.name
            );
            let peak = m.occupancy.predicted_peak(&a.residency, kernel.num_ctas());
            assert!(peak <= a.resident_bound, "{}", p.name);
            assert!(peak <= kernel.num_ctas(), "{}", p.name);
        }

        // The model's memory sites are a subset of the program's
        // instructions and its lints are warnings only.
        for site in &m.mem_sites {
            assert!(site.pc < kernel.program().len(), "{}", p.name);
            if let Some(seg) = site.segments_per_warp {
                assert!((1..=32).contains(&seg), "{}", p.name);
            }
            if let Some(ways) = site.bank_conflict_ways {
                assert!((1..=32).contains(&ways), "{}", p.name);
            }
        }
        assert!(
            m.diagnostics
                .iter()
                .all(|d| d.severity != vt_analysis::Severity::Error),
            "{}: model findings are never errors",
            p.name
        );

        // The two passes see the same register pressure.
        assert_eq!(m.register_pressure, report.register_pressure, "{}", p.name);
    }
}
