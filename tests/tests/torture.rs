//! Torture kernels for the interplay of divergence, barriers, partial
//! warps and early exits — the hardest cases for the SIMT stack and the
//! barrier unit, checked against the reference interpreter.

use vt_core::{sweep, Architecture, Pool, Report, RunBudget, RunRequest, Session, SimError};
use vt_isa::interp::Interpreter;
use vt_isa::op::{Operand, Sreg};
use vt_isa::{Kernel, KernelBuilder};
use vt_tests::small_config;

/// Per-case cycle budget. Every torture kernel finishes in well under a
/// million cycles; a scheduling or barrier bug that livelocks therefore
/// truncates its own case quickly (surfacing as `SimError::Truncated`)
/// instead of burning the default 200M-cycle watchdog and the tier's
/// wall-clock budget with it.
const CASE_BUDGET_CYCLES: u64 = 2_000_000;

fn check(kernel: &Kernel) {
    let reference = Interpreter::new(kernel).unwrap().run().unwrap();
    let archs = [Architecture::Baseline, Architecture::virtual_thread()];
    // Fan the architecture runs across the sweep runner — same mechanism
    // vtsweep uses, so torture cases double as a smoke test of it.
    let pool = Pool::new(2);
    let jobs: Vec<_> = archs
        .into_iter()
        .map(|arch| {
            move || -> Result<Report, SimError> {
                let mut session = Session::new(small_config(arch))
                    .with_budget(RunBudget::unlimited().with_max_cycles(CASE_BUDGET_CYCLES));
                Ok(session
                    .run(RunRequest::kernel(kernel))?
                    .completed()?
                    .remove(0))
            }
        })
        .collect();
    for (arch, result) in archs.into_iter().zip(sweep(&pool, jobs)) {
        let report =
            result.unwrap_or_else(|e| panic!("{} under {}: {e}", kernel.name(), arch.label()));
        assert_eq!(
            report.mem_image.as_words(),
            reference.mem().as_words(),
            "{} under {}",
            kernel.name(),
            arch.label()
        );
    }
}

#[test]
fn deeply_nested_divergence() {
    // Four nested data-dependent branches over each thread's bits.
    let mut b = KernelBuilder::new("nest4");
    let out = b.alloc_global(512);
    let gid = b.reg();
    let off = b.reg();
    let acc = b.reg();
    let p = b.reg();
    b.global_thread_id(gid);
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.mov(acc, Operand::Imm(0));
    fn nest(b: &mut KernelBuilder, gid: vt_isa::Reg, p: vt_isa::Reg, acc: vt_isa::Reg, bit: u32) {
        if bit == 4 {
            b.add(acc, Operand::Reg(acc), Operand::Imm(1000));
            return;
        }
        b.and_(p, Operand::Reg(gid), Operand::Imm(1 << bit));
        b.if_else(
            Operand::Reg(p),
            |b| {
                b.add(acc, Operand::Reg(acc), Operand::Imm(1 << bit));
                nest(b, gid, p, acc, bit + 1);
            },
            |b| nest(b, gid, p, acc, bit + 1),
        );
    }
    nest(&mut b, gid, p, acc, 0);
    b.st_global(Operand::Reg(off), out as i32, Operand::Reg(acc));
    let k = b.build(8, 64).unwrap();
    check(&k);
    // Sanity: the reference result is what the arithmetic says.
    let r = Interpreter::new(&k).unwrap().run().unwrap();
    for t in 0..512u32 {
        assert_eq!(r.load_words(out + 4 * t, 1)[0], (t % 16) + 1000);
    }
}

#[test]
fn divergent_early_exit() {
    // A quarter of each warp exits immediately; the rest loop.
    let mut b = KernelBuilder::new("early-exit");
    let out = b.alloc_global(256);
    let gid = b.reg();
    let off = b.reg();
    let p = b.reg();
    let acc = b.reg();
    let i = b.reg();
    b.global_thread_id(gid);
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.and_(p, Operand::Reg(gid), Operand::Imm(3));
    b.set_eq(p, Operand::Reg(p), Operand::Imm(0));
    b.if_(Operand::Reg(p), |b| {
        b.st_global(Operand::Reg(off), out as i32, Operand::Imm(7));
        b.exit();
    });
    b.mov(acc, Operand::Imm(0));
    b.for_range(i, Operand::Imm(0), Operand::Imm(5), 1, |b, i| {
        b.add(acc, Operand::Reg(acc), Operand::Reg(i));
    });
    b.st_global(Operand::Reg(off), out as i32, Operand::Reg(acc));
    let k = b.build(4, 64).unwrap();
    check(&k);
    let r = Interpreter::new(&k).unwrap().run().unwrap();
    for t in 0..256u32 {
        let want = if t % 4 == 0 { 7 } else { 10 };
        assert_eq!(r.load_words(out + 4 * t, 1)[0], want, "thread {t}");
    }
}

#[test]
fn barrier_inside_loop_with_partial_warp() {
    // 48 threads (one full + one half warp) ping-pong through shared
    // memory with a barrier each step.
    let nt = 48u32;
    let mut b = KernelBuilder::new("pingpong");
    let out = b.alloc_global(nt as usize * 4);
    let buf = b.alloc_shared(nt);
    let soff = b.reg();
    let v = b.reg();
    let nb = b.reg();
    let t = b.reg();
    let tmp = b.reg();
    let goff = b.reg();
    b.shl(soff, Operand::Sreg(Sreg::Tid), Operand::Imm(2));
    b.st_shared(Operand::Reg(soff), buf as i32, Operand::Sreg(Sreg::Tid));
    b.bar();
    b.mov(v, Operand::Sreg(Sreg::Tid));
    b.for_range(t, Operand::Imm(0), Operand::Imm(6), 1, |b, _| {
        b.add(tmp, Operand::Sreg(Sreg::Tid), Operand::Imm(1));
        b.rem(tmp, Operand::Reg(tmp), Operand::Imm(nt));
        b.shl(tmp, Operand::Reg(tmp), Operand::Imm(2));
        b.ld_shared(nb, Operand::Reg(tmp), buf as i32);
        b.add(v, Operand::Reg(v), Operand::Reg(nb));
        b.bar();
        b.st_shared(Operand::Reg(soff), buf as i32, Operand::Reg(v));
        b.bar();
    });
    b.global_thread_id(goff);
    b.shl(goff, Operand::Reg(goff), Operand::Imm(2));
    b.st_global(Operand::Reg(goff), out as i32, Operand::Reg(v));
    let k = b.build(4, nt).unwrap();
    check(&k);
}

#[test]
fn warp_exits_with_loads_in_flight() {
    // Stores + a load whose result is never consumed; the warp exits
    // while the response is still travelling. Exercises the stale-
    // completion (uid) machinery.
    let mut b = KernelBuilder::new("fire-and-exit");
    let data = b.alloc_global(4096);
    let gid = b.reg();
    let off = b.reg();
    let v = b.reg();
    b.global_thread_id(gid);
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.st_global(Operand::Reg(off), data as i32, Operand::Reg(gid));
    b.ld_global(v, Operand::Reg(off), data as i32);
    b.exit();
    let k = b.build(32, 64).unwrap();
    check(&k);
}

#[test]
fn empty_branch_bodies() {
    let mut b = KernelBuilder::new("empty");
    let out = b.alloc_global(64);
    let gid = b.reg();
    let off = b.reg();
    let p = b.reg();
    b.global_thread_id(gid);
    b.and_(p, Operand::Reg(gid), Operand::Imm(1));
    b.if_(Operand::Reg(p), |_| {});
    b.if_else(Operand::Reg(p), |_| {}, |_| {});
    b.shl(off, Operand::Reg(gid), Operand::Imm(2));
    b.st_global(Operand::Reg(off), out as i32, Operand::Imm(1));
    let k = b.build(1, 64).unwrap();
    check(&k);
}
