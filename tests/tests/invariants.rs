//! Architectural invariants: resource limits are never exceeded, the
//! performance ordering between architectures holds on latency-bound
//! work, and error paths behave.

use vt_core::{occupancy, Architecture, CoreConfig, Gpu, GpuConfig, SimError, VtParams};
use vt_isa::op::Operand;
use vt_isa::KernelBuilder;
use vt_tests::{run, small_config};
use vt_workloads::{full_suite, AccessPattern, Scale, SyntheticParams};

fn latency_bound() -> vt_isa::Kernel {
    SyntheticParams {
        ctas: 64,
        access: AccessPattern::Random,
        alu_per_load: 1,
        ..SyntheticParams::default()
    }
    .build()
}

#[test]
fn baseline_never_exceeds_scheduling_limit() {
    let core = CoreConfig {
        num_sms: 2,
        ..CoreConfig::default()
    };
    for w in full_suite(&Scale::test()) {
        let r = run(Architecture::Baseline, &w.kernel);
        let occ = &r.stats.occupancy;
        assert!(
            occ.avg_resident_warps() <= f64::from(core.max_warps_per_sm) + 1e-9,
            "{}",
            w.name
        );
        assert!(
            occ.avg_resident_ctas() <= f64::from(core.max_ctas_per_sm) + 1e-9,
            "{}",
            w.name
        );
        assert_eq!(r.stats.swaps.swaps_out, 0, "baseline never swaps");
    }
}

#[test]
fn vt_respects_active_limit_while_exceeding_residency() {
    let core = CoreConfig {
        num_sms: 2,
        ..CoreConfig::default()
    };
    let k = latency_bound();
    let r = run(Architecture::virtual_thread(), &k);
    let occ = &r.stats.occupancy;
    // Active (schedulable) warps never exceed the scheduling limit…
    assert!(occ.avg_active_warps() <= f64::from(core.max_warps_per_sm) + 1e-9);
    // …while resident warps go beyond what the baseline could ever host.
    let base = run(Architecture::Baseline, &k);
    assert!(occ.avg_resident_warps() > base.stats.occupancy.avg_resident_warps() * 1.3);
    // And residency respects the capacity limit.
    let static_occ = occupancy::analyze(&core, &k);
    assert!(occ.avg_resident_ctas() <= f64::from(static_occ.capacity_ctas) + 1e-9);
}

#[test]
fn vt_cap_bounds_residency() {
    let k = latency_bound();
    let capped = Architecture::VirtualThread(VtParams {
        max_virtual_ctas: Some(10),
        ..VtParams::default()
    });
    let r = run(capped, &k);
    assert!(r.stats.occupancy.avg_resident_ctas() <= 10.0 + 1e-9);
}

#[test]
fn performance_ordering_on_latency_bound_kernel() {
    let k = latency_bound();
    let base = run(Architecture::Baseline, &k);
    let vt = run(Architecture::virtual_thread(), &k);
    let ideal = run(Architecture::Ideal, &k);
    let memswap = run(Architecture::MemSwap(vt_core::MemSwapParams::default()), &k);
    assert!(vt.stats.cycles < base.stats.cycles, "VT beats baseline");
    assert!(
        ideal.stats.cycles <= vt.stats.cycles * 11 / 10,
        "ideal ({}) is VT's ({}) upper bound",
        ideal.stats.cycles,
        vt.stats.cycles
    );
    assert!(
        memswap.stats.cycles >= vt.stats.cycles,
        "memswap pays more per switch"
    );
    assert!(vt.stats.swaps.swaps_out > 0);
    assert!(vt.stats.swaps.swaps_in <= vt.stats.swaps.swaps_out);
}

#[test]
fn capacity_limited_kernels_are_untouched_by_vt() {
    for w in full_suite(&Scale::test()) {
        if w.class != vt_workloads::LimiterClass::Capacity {
            continue;
        }
        let base = run(Architecture::Baseline, &w.kernel);
        let vt = run(Architecture::virtual_thread(), &w.kernel);
        assert_eq!(base.stats.cycles, vt.stats.cycles, "{}", w.name);
        assert_eq!(
            vt.stats.swaps.swaps_out, 0,
            "{}: nothing to swap against",
            w.name
        );
    }
}

#[test]
fn oversized_cta_is_rejected_at_launch() {
    let mut b = KernelBuilder::new("huge");
    b.pad_regs(200);
    b.exit();
    let k = b.build(1, 1536).unwrap();
    let err = Gpu::new(small_config(Architecture::Baseline))
        .run(&k)
        .unwrap_err();
    assert!(matches!(err, SimError::Launch(_)), "got {err}");
}

#[test]
fn watchdog_aborts_runaway_kernels() {
    let mut b = KernelBuilder::new("spin");
    b.while_(|_| Operand::Imm(1), |_| {});
    let k = b.build(1, 32).unwrap();
    let mut cfg = small_config(Architecture::virtual_thread());
    cfg.core.max_cycles = 2_000;
    let err = Gpu::new(cfg).run(&k).unwrap_err();
    assert_eq!(err, SimError::Watchdog { cycle: 2_000 });
}

#[test]
fn idle_cycles_never_exceed_sm_cycles() {
    for w in full_suite(&Scale::test()) {
        let r = run(Architecture::virtual_thread(), &w.kernel);
        assert!(
            r.stats.idle.total() <= r.stats.occupancy.sm_cycles,
            "{}",
            w.name
        );
        assert_eq!(
            r.stats.occupancy.sm_cycles,
            r.stats.cycles * 2,
            "{}",
            w.name
        );
    }
}

#[test]
fn idle_accounting_partitions_every_sm_cycle() {
    // Each SM-cycle is charged to exactly one bucket: either at least one
    // instruction issued (`issue_cycles`) or exactly one idle bucket, by
    // the precedence documented on `IdleBreakdown` (no_warps, then
    // swapping/memory for a drained active set, then the issue-list scan).
    // The buckets therefore partition `num_sms × cycles` with no cycle
    // dropped or double-counted — for every suite kernel and every
    // architecture. The empty split refines `no_warps` the same way
    // (scheduling + capacity + drain, nothing else), so the derived
    // CPI stack inherits the conservation identity exactly.
    for w in full_suite(&Scale::test()) {
        for arch in vt_tests::all_archs() {
            let r = run(arch, &w.kernel);
            assert_eq!(
                r.stats.idle.total() + r.stats.issue_cycles,
                r.stats.occupancy.sm_cycles,
                "{} under {}",
                w.name,
                arch.label()
            );
            assert_eq!(
                r.stats.occupancy.sm_cycles,
                r.stats.cycles * 2,
                "{} under {} (2 SMs accumulate once per cycle)",
                w.name,
                arch.label()
            );
            assert_eq!(
                r.stats.empty.total(),
                r.stats.idle.no_warps,
                "{} under {}: empty split must refine idle.no_warps",
                w.name,
                arch.label()
            );
            let cpi = r.stats.cpi_stack();
            assert_eq!(
                cpi.total(),
                r.stats.occupancy.sm_cycles,
                "{} under {}: CPI stack conserves SM-cycles",
                w.name,
                arch.label()
            );
            assert_eq!(cpi.issued, r.stats.issue_cycles);
            assert_eq!(cpi.stalled() + cpi.empty(), r.stats.idle.total());
        }
    }
}

#[test]
fn swap_accounting_is_consistent() {
    let k = latency_bound();
    let r = run(Architecture::virtual_thread(), &k);
    let s = &r.stats.swaps;
    // Every swap-in restores a context that a swap-out saved.
    assert!(s.swaps_in <= s.swaps_out);
    // Activations (fresh + restored) cover every admitted CTA at least once.
    assert!(s.fresh_activations >= u64::from(k.num_ctas() / 2));
    assert!(s.swap_busy_cycles > 0);
}

#[test]
fn report_exposes_resolved_residency() {
    let k = latency_bound();
    let r = Gpu::new(GpuConfig::with_arch(Architecture::virtual_thread()))
        .run(&k)
        .unwrap();
    assert!(r.residency.swap.is_some());
    let base = Gpu::new(GpuConfig::default()).run(&k).unwrap();
    assert!(base.residency.swap.is_none());
}
