//! Every workload of the suite must produce the exact same final memory
//! image on the cycle-level simulator — under every architecture — as on
//! the timing-free reference interpreter. This pins down the functional
//! correctness of the whole stack: ISA semantics, SIMT divergence,
//! barriers, shared memory, atomics and the CTA residency machinery.

use vt_isa::interp::Interpreter;
use vt_tests::{all_archs, run};
use vt_workloads::{full_suite, Scale};

#[test]
fn suite_matches_interpreter_under_every_architecture() {
    for w in full_suite(&Scale::test()) {
        let reference = Interpreter::new(&w.kernel)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for arch in all_archs() {
            let report = run(arch, &w.kernel);
            assert_eq!(
                report.mem_image.as_words(),
                reference.mem().as_words(),
                "{} diverged functionally under {}",
                w.name,
                arch.label()
            );
        }
    }
}

#[test]
fn instruction_counts_match_interpreter() {
    // The simulator issues exactly the dynamic instruction stream the
    // interpreter executes (same warp-level SIMT semantics).
    for w in full_suite(&Scale::test()) {
        let reference = Interpreter::new(&w.kernel).unwrap().run().unwrap();
        let report = run(vt_core::Architecture::Baseline, &w.kernel);
        assert_eq!(
            report.stats.warp_instrs,
            reference.warp_instrs(),
            "{}: warp instruction count mismatch",
            w.name
        );
        assert_eq!(
            report.stats.thread_instrs,
            reference.thread_instrs(),
            "{}: thread instruction count mismatch",
            w.name
        );
    }
}

#[test]
fn ctas_all_complete() {
    for w in full_suite(&Scale::test()) {
        let report = run(vt_core::Architecture::virtual_thread(), &w.kernel);
        assert_eq!(
            report.stats.ctas_completed,
            u64::from(w.kernel.num_ctas()),
            "{}: lost CTAs",
            w.name
        );
    }
}
