//! Golden snapshot of the static performance model over the suite: the
//! exact JSON `vtlint --model --json --suite` emits (the CLI prints the
//! same `ToJson` rendering of the same models — the binary's schema is
//! covered by `crates/analysis/tests/vtlint_cli.rs`). Any change to the
//! bound arithmetic, the limiter classification, the residency policies
//! or the memory lints shows up as a readable line diff here.
//!
//! To accept intentional changes:
//!
//! ```text
//! VT_BLESS=1 cargo test -q -p vt-tests --test model_golden
//! ```

use std::fs;
use std::path::PathBuf;
use vt_analysis::{model, ModelConfig};
use vt_json::{Json, ToJson};
use vt_workloads::{full_suite, Scale};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("vtlint.model.json")
}

/// First differing lines, with line numbers.
fn line_diff(got: &str, want: &str) -> String {
    let mut out = String::new();
    let mut shown = 0;
    let (mut g, mut w) = (got.lines(), want.lines());
    let mut line = 0usize;
    loop {
        line += 1;
        match (g.next(), w.next()) {
            (None, None) => break,
            (got_l, want_l) => {
                if got_l != want_l && shown < 12 {
                    out.push_str(&format!(
                        "  line {line}: got  {}\n  line {line}: want {}\n",
                        got_l.unwrap_or("<eof>"),
                        want_l.unwrap_or("<eof>")
                    ));
                    shown += 1;
                }
            }
        }
    }
    if shown == 12 {
        out.push_str("  ... (more differences truncated)\n");
    }
    out
}

#[test]
fn model_json_matches_golden_snapshot() {
    let cfg = ModelConfig::default();
    let models: Vec<_> = full_suite(&Scale::test())
        .iter()
        .map(|w| model(&w.kernel, &cfg))
        .collect();
    let got = Json::Array(models.iter().map(ToJson::to_json).collect()).pretty() + "\n";

    let path = golden_path();
    let bless = std::env::var("VT_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    if bless {
        fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        fs::write(&path, &got).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nbless it with VT_BLESS=1 cargo test -q -p vt-tests --test model_golden",
            path.display()
        )
    });
    assert!(
        got == want,
        "static model output drifted from {}:\n{}",
        path.display(),
        line_diff(&got, &want)
    );
}
