//! End-to-end observability: traced runs produce structurally valid
//! event streams for every architecture, observation (tracing *and*
//! windowed metrics) never perturbs the simulation, the metric series
//! agree with the event stream, and the Chrome-trace export is well
//! formed.

use vt_core::{Architecture, Report, RunRequest, Session};
use vt_isa::Kernel;
use vt_tests::{all_archs, run, small_config};
use vt_trace::{
    to_chrome_json, to_chrome_json_with, validate, validate_metrics, RingSink, SwapDir, TimedEvent,
    TraceEvent,
};
use vt_workloads::{suite, AccessPattern, Scale, SyntheticParams};

fn run_traced(arch: Architecture, kernel: &Kernel) -> (Report, Vec<TimedEvent>) {
    let mut session = Session::new(small_config(arch)).with_sink(RingSink::new(1 << 22));
    let report = session
        .run(RunRequest::kernel(kernel))
        .and_then(|o| o.completed())
        .unwrap_or_else(|e| panic!("{} under {}: {e}", kernel.name(), arch.label()))
        .remove(0);
    let sink = session.into_sink();
    assert_eq!(sink.dropped(), 0, "ring large enough for test-scale runs");
    (report, sink.into_events())
}

fn latency_bound() -> Kernel {
    SyntheticParams {
        ctas: 64,
        access: AccessPattern::Random,
        alu_per_load: 1,
        ..SyntheticParams::default()
    }
    .build()
}

#[test]
fn traces_validate_across_suite_and_architectures() {
    for w in suite(&Scale::test()) {
        let (_, events) = run_traced(Architecture::virtual_thread(), &w.kernel);
        assert!(!events.is_empty(), "{}", w.name);
        if let Err(issues) = validate(&events) {
            panic!("{}: {}", w.name, issues.join("; "));
        }
    }
    let k = latency_bound();
    for arch in all_archs() {
        let (_, events) = run_traced(arch, &k);
        if let Err(issues) = validate(&events) {
            panic!("{}: {}", arch.label(), issues.join("; "));
        }
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let ws = suite(&Scale::test());
    for w in ws.iter().take(4) {
        for arch in all_archs() {
            let untraced = run(arch, &w.kernel);
            let (traced, _) = run_traced(arch, &w.kernel);
            assert_eq!(
                untraced.stats,
                traced.stats,
                "{} under {}",
                w.name,
                arch.label()
            );
            assert_eq!(untraced.mem_image, traced.mem_image);
        }
    }
}

/// Enabling metrics must not change a single counter, cycle or memory
/// word: the metered run's stats (with the series field cleared) equal
/// the unmetered run's exactly.
#[test]
fn metrics_do_not_perturb_the_simulation() {
    let ws = suite(&Scale::test());
    for w in ws.iter().take(4) {
        for arch in all_archs() {
            let unmetered = run(arch, &w.kernel);
            let mut cfg = small_config(arch);
            cfg.core.metrics_window = Some(128);
            let mut metered = Session::new(cfg)
                .run(RunRequest::kernel(&w.kernel))
                .and_then(|o| o.completed())
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, arch.label()))
                .remove(0);
            let series = metered.stats.series.take().expect("metrics enabled");
            assert_eq!(
                series.windows(),
                (metered.stats.cycles - 1) / 128,
                "{} under {}: sealed window count",
                w.name,
                arch.label()
            );
            assert_eq!(
                unmetered.stats,
                metered.stats,
                "{} under {}",
                w.name,
                arch.label()
            );
            assert_eq!(unmetered.mem_image, metered.mem_image);
        }
    }
}

/// On a run that is traced *and* metered, the windowed series must agree
/// with the event stream window-by-window (issue counts, distinct issue
/// cycles, swap traffic) — the two observability layers cross-validate.
#[test]
fn metric_series_agree_with_the_event_stream() {
    let k = latency_bound();
    for arch in [Architecture::Baseline, Architecture::virtual_thread()] {
        let mut cfg = small_config(arch);
        cfg.core.metrics_window = Some(64);
        let mut session = Session::new(cfg).with_sink(RingSink::new(1 << 22));
        let report = session
            .run(RunRequest::kernel(&k))
            .and_then(|o| o.completed())
            .unwrap_or_else(|e| panic!("{}: {e}", arch.label()))
            .remove(0);
        let sink = session.into_sink();
        assert_eq!(sink.dropped(), 0);
        let events = sink.into_events();
        let m = report.stats.metrics().expect("metrics enabled");
        assert!(m.windows() >= 2, "{}: run too short", arch.label());
        if let Err(issues) = validate_metrics(&events, m) {
            panic!("{}: {}", arch.label(), issues.join("; "));
        }
    }
}

#[test]
fn vt_traces_carry_the_swap_protocol() {
    let k = latency_bound();
    let (report, events) = run_traced(Architecture::virtual_thread(), &k);
    assert!(report.stats.swaps.swaps_out > 0, "kernel must swap");

    let count = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|e| f(&e.ev)).count() as u64;
    let swap_out_begins = count(&|ev| {
        matches!(
            ev,
            TraceEvent::SwapBegin {
                dir: SwapDir::Out,
                ..
            }
        )
    });
    let swap_out_ends = count(&|ev| {
        matches!(
            ev,
            TraceEvent::SwapEnd {
                dir: SwapDir::Out,
                ..
            }
        )
    });
    assert_eq!(swap_out_begins, report.stats.swaps.swaps_out);
    assert_eq!(swap_out_ends, swap_out_begins, "every save completes");

    let fresh_ins = count(&|ev| matches!(ev, TraceEvent::SwapBegin { fresh: true, .. }));
    let restore_ins = count(&|ev| {
        matches!(
            ev,
            TraceEvent::SwapBegin {
                dir: SwapDir::In,
                fresh: false,
                ..
            }
        )
    });
    assert_eq!(fresh_ins, report.stats.swaps.fresh_activations);
    assert_eq!(restore_ins, report.stats.swaps.swaps_in);

    let launches = count(&|ev| matches!(ev, TraceEvent::CtaLaunch { .. }));
    let completes = count(&|ev| matches!(ev, TraceEvent::CtaComplete { .. }));
    assert_eq!(launches, report.stats.ctas_completed);
    assert_eq!(completes, launches);

    // Swap-gap samples are one per restore; durations cover saves and
    // restores.
    assert_eq!(report.stats.swap_gap.count, report.stats.swaps.swaps_in);
    assert_eq!(
        report.stats.swap_duration.count,
        report.stats.swaps.swaps_in + report.stats.swaps.swaps_out
    );
}

#[test]
fn memory_spans_balance_and_match_counters() {
    let k = latency_bound();
    let (report, events) = run_traced(Architecture::Baseline, &k);
    let begins = events
        .iter()
        .filter(|e| matches!(e.ev, TraceEvent::MemBegin { .. }))
        .count() as u64;
    let ends = events
        .iter()
        .filter(|e| matches!(e.ev, TraceEvent::MemEnd { .. }))
        .count() as u64;
    assert!(begins > 0);
    assert_eq!(begins, ends, "every request span is closed");

    let s = &report.stats.mem;
    // The load-latency histogram is the same population the legacy
    // counters track.
    assert_eq!(s.load_latency.count, s.loads_completed);
    assert_eq!(s.load_latency.sum, s.load_latency_sum);
    assert!(s.mshr_occupancy.samples > 0);
    assert!(report.stats.ldst_queue.samples > 0);
}

#[test]
fn chrome_export_is_perfetto_shaped() {
    let ws = suite(&Scale::test());
    let w = ws.iter().find(|w| w.name == "reduction").unwrap();
    let (report, events) = run_traced(Architecture::virtual_thread(), &w.kernel);
    let json = to_chrome_json(&events).compact();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"process_name\""), "SM process metadata");
    assert!(json.contains("\"thread_name\""), "track metadata");
    assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
    assert!(json.contains("\"ph\":\"b\""), "async memory spans");
    assert!(
        json.contains("barrier-wait"),
        "reduction executes barriers so the trace has barrier spans"
    );
    assert!(report.stats.barriers > 0);
}

/// With a metered run, the Chrome export additionally carries the
/// windowed series as Perfetto counter tracks.
#[test]
fn chrome_export_renders_metric_counter_tracks() {
    let k = latency_bound();
    let mut cfg = small_config(Architecture::virtual_thread());
    cfg.core.metrics_window = Some(64);
    let mut session = Session::new(cfg).with_sink(RingSink::new(1 << 22));
    let report = session
        .run(RunRequest::kernel(&k))
        .and_then(|o| o.completed())
        .expect("run completes")
        .remove(0);
    let events = session.into_sink().into_events();
    let m = report.stats.metrics().expect("metrics enabled");
    assert!(m.windows() > 0);
    let json = to_chrome_json_with(&events, Some(m)).compact();
    assert!(json.contains("\"ph\":\"C\""), "counter events present");
    assert!(json.contains("vt_resident_warps"), "level series track");
    assert!(json.contains("vt_warp_instrs"), "rate series track");
    // Without a registry the export equals the plain form.
    assert_eq!(
        to_chrome_json_with(&events, None).compact(),
        to_chrome_json(&events).compact()
    );
}
