//! End-to-end tests of the execution-control layer through the `Session`
//! API: budget truncation yields valid partial statistics, checkpoints
//! resume bit-identically at every worker count (traced and untraced),
//! cancellation from another thread stops a run without hangs or
//! panics, and kernel chains inherit the session's pool.

use std::time::Duration;
use vt_core::{
    Architecture, Checkpoint, Pool, Report, RunBudget, RunRequest, Session, SessionOutcome,
    SimError, StopReason,
};
use vt_prng::Prng;
use vt_tests::small_config;
use vt_trace::{BufSink, TimedEvent};
use vt_workloads::{full_suite, AccessPattern, Scale, SyntheticParams};

/// A latency-bound kernel that runs for a few thousand cycles — long
/// enough that every cut point in these tests lands mid-flight.
fn long_kernel() -> vt_isa::Kernel {
    SyntheticParams {
        name: "exec-ctl".to_string(),
        ctas: 24,
        access: AccessPattern::Random,
        iters: 4,
        ..SyntheticParams::default()
    }
    .build()
}

/// Runs `kernel` uninterrupted on `threads` workers with a buffering
/// sink, returning the report and the full event stream.
fn uninterrupted(
    arch: Architecture,
    kernel: &vt_isa::Kernel,
    threads: usize,
) -> (Report, Vec<TimedEvent>) {
    let mut events = Vec::new();
    let mut session = Session::new(small_config(arch)).with_sink(BufSink(&mut events));
    if threads > 1 {
        session = session.with_pool(Pool::new(threads));
    }
    let report = session
        .run(RunRequest::kernel(kernel))
        .and_then(|o| o.completed())
        .expect("uninterrupted run completes")
        .remove(0);
    drop(session);
    (report, events)
}

/// The tentpole contract: truncate at several cycle points, round-trip
/// the checkpoint through its text form, resume on 1/2/4 workers with
/// tracing attached, and require the stitched run to be bit-identical to
/// the uninterrupted one — stats, memory image and event stream.
#[test]
fn resume_is_bit_identical_across_cuts_and_worker_counts() {
    let kernel = long_kernel();
    let arch = Architecture::virtual_thread();
    let (want, want_events) = uninterrupted(arch, &kernel, 1);
    assert!(
        want.stats.cycles > 512,
        "kernel too short ({} cycles) for the cut points below",
        want.stats.cycles
    );
    for threads in [1usize, 2, 4] {
        for cut in [1u64, 64, 512] {
            let mut events = Vec::new();
            let mut session = Session::new(small_config(arch)).with_sink(BufSink(&mut events));
            if threads > 1 {
                session = session.with_pool(Pool::new(threads));
            }
            let label = format!("cut {cut} on {threads} worker(s)");
            let outcome = session
                .run(
                    RunRequest::kernel(&kernel)
                        .with_budget(RunBudget::unlimited().with_max_cycles(cut)),
                )
                .expect(&label);
            let SessionOutcome::Truncated { truncation, .. } = outcome else {
                panic!("{label}: expected truncation");
            };
            assert_eq!(truncation.reason, StopReason::CycleBudget, "{label}");
            assert_eq!(truncation.stats.cycles, cut, "{label}");

            // The checkpoint must survive its own text representation.
            let ckpt = Checkpoint::parse(&truncation.checkpoint.to_text()).expect(&label);
            assert_eq!(ckpt.cycle().expect(&label), cut, "{label}");
            assert_eq!(ckpt.kernel_name().expect(&label), kernel.name(), "{label}");

            let resumed = match session
                .run(RunRequest::kernel(&kernel).resume_from(&ckpt))
                .expect(&label)
            {
                SessionOutcome::Completed(mut reports) => reports.remove(0),
                SessionOutcome::Truncated { .. } => panic!("{label}: unlimited resume truncated"),
            };
            drop(session);
            assert_eq!(resumed.stats, want.stats, "{label}: stats diverge");
            assert_eq!(
                resumed.mem_image, want.mem_image,
                "{label}: memory image diverges"
            );
            assert_eq!(
                events, want_events,
                "{label}: stitched trace diverges from uninterrupted trace"
            );
        }
    }
}

/// Metered runs stitch too: with a metrics window enabled, the resumed
/// run's windowed series (carried inside `RunStats`, so covered by the
/// stats equality) must equal the uninterrupted run's byte-for-byte at
/// every cut point and worker count — including cuts that land mid-window
/// and exactly on a window boundary.
#[test]
fn metered_resume_stitches_series_bit_identically() {
    let kernel = long_kernel();
    let arch = Architecture::virtual_thread();
    let mut cfg = small_config(arch);
    cfg.core.metrics_window = Some(64);

    let want = Session::new(cfg.clone())
        .run(RunRequest::kernel(&kernel))
        .and_then(|o| o.completed())
        .expect("uninterrupted metered run completes")
        .remove(0);
    let want_series = want.stats.metrics().expect("metrics enabled");
    assert!(
        want_series.windows() >= 2,
        "kernel too short ({} windows) to exercise stitching",
        want_series.windows()
    );

    // Cuts: mid-window (1, 100) and exactly on a boundary (64, 128).
    for threads in [1usize, 2, 4] {
        for cut in [1u64, 64, 100, 128] {
            let label = format!("cut {cut} on {threads} worker(s)");
            let mut session = Session::new(cfg.clone());
            if threads > 1 {
                session = session.with_pool(Pool::new(threads));
            }
            let SessionOutcome::Truncated { truncation, .. } = session
                .run(
                    RunRequest::kernel(&kernel)
                        .with_budget(RunBudget::unlimited().with_max_cycles(cut)),
                )
                .expect(&label)
            else {
                panic!("{label}: expected truncation");
            };
            // Partial series never contain a half-sealed window: exactly
            // the boundaries strictly before the cut are sealed.
            let partial = truncation.stats.metrics().expect("metrics enabled");
            assert_eq!(
                partial.windows(),
                (cut - 1) / 64,
                "{label}: sealed windows in the partial stats"
            );

            let ckpt = Checkpoint::parse(&truncation.checkpoint.to_text()).expect(&label);
            let resumed = session
                .run(RunRequest::kernel(&kernel).resume_from(&ckpt))
                .and_then(|o| o.completed())
                .expect(&label)
                .remove(0);
            assert_eq!(
                resumed.stats, want.stats,
                "{label}: stitched stats (incl. metric series) diverge"
            );
            assert_eq!(resumed.mem_image, want.mem_image, "{label}");
        }
    }
}

/// The resume contract over the *grown* suite: every workload — core
/// and zoo alike — truncated at a random (per-kernel, seeded) cycle cut
/// and resumed must stitch bit-identically to the uninterrupted run at
/// 1, 2 and 4 workers: stats, memory image and trace stream. This is
/// what lets long zoo/trace experiments checkpoint safely.
#[test]
fn grown_suite_resumes_bit_identically_from_random_cuts() {
    let mut r = Prng::new(0x7e57);
    let arch = Architecture::virtual_thread();
    for w in full_suite(&Scale { ctas: 6, iters: 2 }) {
        let (want, want_events) = uninterrupted(arch, &w.kernel, 1);
        assert!(want.stats.cycles > 2, "{}: too short to cut", w.name);
        let cut = u64::from(r.gen_range(1..want.stats.cycles as u32));
        for threads in [1usize, 2, 4] {
            let label = format!("{} cut {cut} on {threads} worker(s)", w.name);
            let mut events = Vec::new();
            let mut session = Session::new(small_config(arch)).with_sink(BufSink(&mut events));
            if threads > 1 {
                session = session.with_pool(Pool::new(threads));
            }
            let outcome = session
                .run(
                    RunRequest::kernel(&w.kernel)
                        .with_budget(RunBudget::unlimited().with_max_cycles(cut)),
                )
                .expect(&label);
            let SessionOutcome::Truncated { truncation, .. } = outcome else {
                panic!("{label}: expected truncation");
            };
            let ckpt = Checkpoint::parse(&truncation.checkpoint.to_text()).expect(&label);
            let resumed = session
                .run(RunRequest::kernel(&w.kernel).resume_from(&ckpt))
                .and_then(|o| o.completed())
                .unwrap_or_else(|e| panic!("{label}: {e}"))
                .remove(0);
            drop(session);
            assert_eq!(resumed.stats, want.stats, "{label}: stats diverge");
            assert_eq!(
                resumed.mem_image, want.mem_image,
                "{label}: memory diverges"
            );
            assert_eq!(events, want_events, "{label}: stitched trace diverges");
        }
    }
}

/// Partial statistics keep the full-run invariants: every SM-cycle up to
/// the truncation point is either an issue cycle or exactly one idle
/// bucket, i.e. `idle.total() + issue_cycles == num_sms × cycles`.
#[test]
fn truncated_stats_satisfy_idle_identity() {
    let kernel = long_kernel();
    let cfg = small_config(Architecture::virtual_thread());
    let num_sms = u64::from(cfg.core.num_sms);
    for cut in [1u64, 10, 100, 1000] {
        let mut session =
            Session::new(cfg.clone()).with_budget(RunBudget::unlimited().with_max_cycles(cut));
        let outcome = session.run(RunRequest::kernel(&kernel)).unwrap();
        let SessionOutcome::Truncated { truncation, .. } = outcome else {
            panic!("cut {cut}: expected truncation");
        };
        let s = &truncation.stats;
        assert_eq!(s.cycles, cut);
        assert_eq!(
            s.idle.total() + s.issue_cycles,
            num_sms * s.cycles,
            "cut {cut}: idle + issue must cover every SM-cycle"
        );
    }
}

/// A wall-clock deadline also truncates (with partial stats), it just
/// does so at a host-dependent cycle.
#[test]
fn deadline_truncates_promptly() {
    let kernel = long_kernel();
    let mut session = Session::new(small_config(Architecture::virtual_thread()));
    // A zero-length deadline trips at the first boundary check.
    let outcome = session
        .run(
            RunRequest::kernel(&kernel)
                .with_budget(RunBudget::unlimited().with_deadline(Duration::from_secs(0))),
        )
        .unwrap();
    let SessionOutcome::Truncated { truncation, .. } = outcome else {
        panic!("expected deadline truncation");
    };
    assert_eq!(truncation.reason, StopReason::Deadline);
    assert!(truncation.stats.cycles >= 1, "at least one cycle ran");
}

/// Cancelling from another thread stops the run at a cycle boundary with
/// a resumable checkpoint; the resumed run still produces the correct
/// final memory image. Cancellation timing is racy by construction, so
/// a run that finishes before the cancel lands is also acceptable — the
/// assertion is "no hang, no panic, correct result either way".
#[test]
fn cancellation_race_is_safe_and_resumable() {
    let kernel = long_kernel();
    let arch = Architecture::virtual_thread();
    let want = vt_tests::run(arch, &kernel);
    let mut cancelled_at_least_once = false;
    for delay_us in [0u64, 50, 200, 1000] {
        let mut session = Session::new(small_config(arch));
        let token = session.cancel_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(delay_us));
            token.cancel();
        });
        let outcome = session.run(RunRequest::kernel(&kernel)).unwrap();
        canceller.join().unwrap();
        match outcome {
            SessionOutcome::Completed(reports) => {
                assert_eq!(reports[0].mem_image, want.mem_image);
            }
            SessionOutcome::Truncated { truncation, .. } => {
                cancelled_at_least_once = true;
                assert_eq!(truncation.reason, StopReason::Cancelled);
                assert!(truncation.stats.cycles >= 1);
                // A cancelled session stays cancelled until reset.
                session.reset_cancel();
                let resumed = session
                    .run(RunRequest::kernel(&kernel).resume_from(&truncation.checkpoint))
                    .and_then(|o| o.completed())
                    .expect("resume after cancel completes")
                    .remove(0);
                assert_eq!(resumed.stats, want.stats);
                assert_eq!(resumed.mem_image, want.mem_image);
            }
        }
    }
    assert!(
        cancelled_at_least_once,
        "no delay managed to cancel mid-run; kernel too short for this test"
    );
}

/// A pre-cancelled session truncates immediately instead of hanging.
#[test]
fn pre_cancelled_session_truncates_immediately() {
    let kernel = long_kernel();
    let mut session = Session::new(small_config(Architecture::Baseline));
    session.cancel_token().cancel();
    let outcome = session.run(RunRequest::kernel(&kernel)).unwrap();
    let SessionOutcome::Truncated { truncation, .. } = outcome else {
        panic!("expected immediate truncation");
    };
    assert_eq!(truncation.reason, StopReason::Cancelled);
    assert_eq!(truncation.stats.cycles, 1, "stops after the first cycle");
}

/// Chains run each launch under the session's pool, bit-identically to a
/// pool-less session — `run_chain`'s old sequential-only limitation is
/// gone.
#[test]
fn chains_inherit_the_session_pool() {
    let kernel = long_kernel();
    let cfg = small_config(Architecture::virtual_thread());
    let chain = [&kernel, &kernel, &kernel];
    let seq = Session::new(cfg.clone())
        .run(RunRequest::kernels(&chain))
        .and_then(|o| o.completed())
        .unwrap();
    let par = Session::new(cfg)
        .with_pool(Pool::new(4))
        .run(RunRequest::kernels(&chain))
        .and_then(|o| o.completed())
        .unwrap();
    assert_eq!(seq.len(), 3);
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(p.stats, s.stats, "launch {i}");
        assert_eq!(p.mem_image, s.mem_image, "launch {i}");
    }
}

/// Truncation surfaces as a retryable error through the
/// `SessionOutcome::completed` shortcut; real failures stay
/// non-retryable. Resume rejects a checkpoint from a different kernel.
#[test]
fn truncation_errors_are_retryable_and_checkpoints_are_validated() {
    let kernel = long_kernel();
    let mut session = Session::new(small_config(Architecture::Baseline))
        .with_budget(RunBudget::unlimited().with_max_cycles(8));
    let err = session
        .run(RunRequest::kernel(&kernel))
        .and_then(|o| o.completed())
        .unwrap_err();
    assert!(
        matches!(err, SimError::Truncated { .. }) && err.is_retryable(),
        "budget truncation must be retryable, got {err}"
    );

    // Grab a real checkpoint, then try to resume a *different* kernel
    // from it.
    let SessionOutcome::Truncated { truncation, .. } =
        session.run(RunRequest::kernel(&kernel)).unwrap()
    else {
        panic!("expected truncation")
    };
    let other = SyntheticParams {
        name: "other".to_string(),
        ctas: 4,
        ..SyntheticParams::default()
    }
    .build();
    let err = session
        .run(RunRequest::kernel(&other).resume_from(&truncation.checkpoint))
        .unwrap_err();
    assert!(
        matches!(err, SimError::Checkpoint { .. }) && !err.is_retryable(),
        "kernel mismatch must be a non-retryable checkpoint error, got {err}"
    );

    // Multi-kernel resume requests are rejected up front.
    let err = session
        .run(RunRequest::kernels(&[&kernel, &kernel]).resume_from(&truncation.checkpoint))
        .unwrap_err();
    assert!(matches!(err, SimError::Checkpoint { .. }));
}
