//! Cycle-accounting CPI stacks: the conservation identity (every
//! SM-cycle lands in exactly one of the nine leaf buckets) as a property
//! test over random synthetic kernels × architectures × worker counts ×
//! truncation cuts, plus exact-integer golden stacks for the pinned
//! suite.
//!
//! To accept an intentional attribution change:
//!
//! ```text
//! VT_BLESS=1 cargo test -q -p vt-tests --test cpi
//! ```

use std::fs;
use std::path::PathBuf;
use vt_core::{Checkpoint, Pool, RunBudget, RunRequest, RunStats, Session, SessionOutcome};
use vt_json::Json;
use vt_prng::Prng;
use vt_tests::small_config;
use vt_workloads::{full_suite, AccessPattern, Scale, SyntheticParams};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// The full conservation identity on one (possibly partial) run:
/// `issued + stalled + empty == num_sms × cycles`, with the empty split
/// refining `idle.no_warps` exactly.
fn assert_conserved(s: &RunStats, num_sms: u64, label: &str) {
    assert_eq!(
        s.issue_cycles + s.idle.total(),
        num_sms * s.cycles,
        "{label}: idle identity"
    );
    assert_eq!(
        s.empty.total(),
        s.idle.no_warps,
        "{label}: empty split must refine idle.no_warps"
    );
    let cpi = s.cpi_stack();
    assert_eq!(
        cpi.total(),
        s.occupancy.sm_cycles,
        "{label}: CPI stack conserves SM-cycles"
    );
    assert_eq!(
        s.occupancy.sm_cycles,
        num_sms * s.cycles,
        "{label}: occupancy accumulates once per SM per cycle"
    );
    assert_eq!(cpi.issued, s.issue_cycles, "{label}");
    assert_eq!(cpi.stalled() + cpi.empty(), s.idle.total(), "{label}");
}

/// Property test: on random synthetic kernels, every architecture,
/// worker count and truncation cut preserves the conservation identity,
/// the stack is bit-identical at 1/2/4 workers, partial stats at any cut
/// already satisfy the identity, and a resumed run reproduces the
/// uninterrupted stack exactly.
#[test]
fn conservation_holds_across_archs_workers_and_cuts() {
    let mut rng = Prng::new(0xc1_0c7e_57a7);
    for case in 0..6 {
        let access = match rng.gen_range(0..3) {
            0 => AccessPattern::Coalesced,
            1 => AccessPattern::Strided(rng.gen_range(1..24)),
            _ => AccessPattern::Random,
        };
        let p = SyntheticParams {
            name: format!("cpi-{case}"),
            ctas: rng.gen_range(4..20),
            threads_per_cta: 32 * rng.gen_range(1..5),
            regs_per_thread: rng.gen_range(8..48) as u16,
            smem_bytes: 256 * rng.gen_range(0..16),
            iters: rng.gen_range(1..3),
            loads_per_iter: rng.gen_range(1..3),
            alu_per_load: rng.gen_range(0..6),
            access,
            barrier_per_iter: rng.gen_bool(0.5),
        };
        let kernel = p.build();
        let cut = u64::from(rng.gen_range(1..64));
        for arch in vt_tests::all_archs() {
            let cfg = small_config(arch);
            let num_sms = u64::from(cfg.core.num_sms);
            let label = format!("{} under {}", p.name, arch.label());

            let want = Session::new(cfg.clone())
                .run(RunRequest::kernel(&kernel))
                .and_then(|o| o.completed())
                .unwrap_or_else(|e| panic!("{label}: {e}"))
                .remove(0);
            assert_conserved(&want.stats, num_sms, &label);

            // Bit-identical stacks at every worker count.
            for threads in [2usize, 4] {
                let par = Session::new(cfg.clone())
                    .with_pool(Pool::new(threads))
                    .run(RunRequest::kernel(&kernel))
                    .and_then(|o| o.completed())
                    .unwrap_or_else(|e| panic!("{label} on {threads} workers: {e}"))
                    .remove(0);
                assert_eq!(
                    par.stats.cpi_stack(),
                    want.stats.cpi_stack(),
                    "{label}: stack differs on {threads} workers"
                );
                assert_eq!(par.stats, want.stats, "{label} on {threads} workers");
            }

            // Partial stats at a truncation cut already conserve, and the
            // resumed run stitches back to the uninterrupted stack.
            if want.stats.cycles <= cut {
                continue;
            }
            let mut session = Session::new(cfg.clone());
            let SessionOutcome::Truncated { truncation, .. } = session
                .run(
                    RunRequest::kernel(&kernel)
                        .with_budget(RunBudget::unlimited().with_max_cycles(cut)),
                )
                .unwrap_or_else(|e| panic!("{label} cut {cut}: {e}"))
            else {
                panic!("{label}: expected truncation at cycle {cut}");
            };
            assert_conserved(&truncation.stats, num_sms, &format!("{label} cut {cut}"));

            let ckpt = Checkpoint::parse(&truncation.checkpoint.to_text())
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let resumed = session
                .run(RunRequest::kernel(&kernel).resume_from(&ckpt))
                .and_then(|o| o.completed())
                .unwrap_or_else(|e| panic!("{label} resume: {e}"))
                .remove(0);
            assert_eq!(
                resumed.stats.cpi_stack(),
                want.stats.cpi_stack(),
                "{label}: resumed stack diverges"
            );
            assert_eq!(resumed.stats, want.stats, "{label}: resumed stats diverge");
        }
    }
}

/// Exact-integer golden CPI stacks for every suite kernel, all four
/// architectures per file (`tests/golden/cpi.<kernel>.json`). Any
/// attribution drift — a cycle moving between buckets — shows up as an
/// integer diff.
#[test]
fn suite_stacks_match_goldens() {
    let bless = std::env::var("VT_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    for w in full_suite(&Scale::test()) {
        let mut fields = Vec::new();
        for arch in vt_tests::all_archs() {
            let r = vt_tests::run(arch, &w.kernel);
            assert_conserved(&r.stats, 2, &format!("{} under {}", w.name, arch.label()));
            fields.push((arch.label().to_string(), r.stats.cpi_stack().to_json()));
        }
        let got = Json::object(fields).pretty();
        let path = golden_dir().join(format!("cpi.{}.json", w.name));
        if bless {
            fs::write(&path, &got).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            continue;
        }
        let want = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {} ({e}); run `VT_BLESS=1 cargo test -p vt-tests \
                 --test cpi` to create it",
                path.display()
            )
        });
        assert_eq!(
            got,
            want,
            "{}: CPI stack drifted from {}",
            w.name,
            path.display()
        );
    }
}
