//! Per-workload behavioural checks on the *timing simulator* (not just
//! the interpreter): functional outputs against CPU references, and the
//! dynamic-behaviour signatures each kernel was designed to have.

use vt_core::Architecture;
use vt_isa::interp::Interpreter;
use vt_tests::run;
use vt_workloads::kernels::{irregular, sync};
use vt_workloads::zoo::HotBinsParams;
use vt_workloads::{full_suite, suite, Scale};

fn tiny() -> Scale {
    Scale { ctas: 6, iters: 2 }
}

#[test]
fn histo_histogram_matches_cpu_reference_under_vt() {
    let s = tiny();
    let k = irregular::histo_like(&s);
    let r = run(Architecture::virtual_thread(), &k);
    let hist = r.mem_image.load_words(0, 256);
    assert_eq!(hist, irregular::histo_reference(&s).as_slice());
    assert_eq!(
        hist.iter().map(|&v| u64::from(v)).sum::<u64>(),
        6 * 128 * 2u64
    );
}

#[test]
fn reduction_total_matches_cpu_reference_under_every_arch() {
    let s = tiny();
    let k = sync::reduction_like(&s);
    for arch in vt_tests::all_archs() {
        let r = run(arch, &k);
        assert_eq!(
            r.mem_image.load(0),
            Some(sync::reduction_reference(&s)),
            "{}",
            arch.label()
        );
    }
}

#[test]
fn hotbins_histogram_matches_cpu_reference_under_every_arch() {
    let p = HotBinsParams {
        ctas: 6,
        ..HotBinsParams::default()
    };
    let k = p.build();
    let bins = p.reference();
    for arch in vt_tests::all_archs() {
        let r = run(arch, &k);
        assert_eq!(
            r.mem_image.load_words(0, bins.len()),
            bins.as_slice(),
            "{}",
            arch.label()
        );
    }
}

#[test]
fn barrier_kernels_actually_use_barriers() {
    for w in full_suite(&tiny()) {
        let r = run(Architecture::Baseline, &w.kernel);
        let has_bar = w.kernel.program().mix().barrier > 0;
        assert_eq!(r.stats.barriers > 0, has_bar, "{}", w.name);
    }
}

#[test]
fn divergent_kernels_report_divergence() {
    let spmv = suite(&tiny())
        .into_iter()
        .find(|w| w.name == "spmv")
        .unwrap();
    let r = run(Architecture::Baseline, &spmv.kernel);
    assert!(
        r.stats.divergent_branches > 0,
        "variable-degree rows diverge"
    );
    assert!(r.stats.max_simt_depth >= 3);
}

#[test]
fn atomic_kernels_produce_atomic_traffic() {
    let histo = suite(&tiny())
        .into_iter()
        .find(|w| w.name == "histo")
        .unwrap();
    let r = run(Architecture::Baseline, &histo.kernel);
    // The counter is per *transaction*: a warp's 32 atomics coalesce into
    // at most 8 line-granular transactions (256 bins = 8 lines), at least
    // one per warp instruction.
    let warp_atomics = 6 * (128 / 32) * 2u64;
    assert!(r.stats.mem.atomics >= warp_atomics);
    assert!(r.stats.mem.atomics <= warp_atomics * 8);
}

#[test]
fn capacity_kernels_have_zero_virtualization_effect_on_memory_traffic() {
    for name in ["sgemm", "lbm", "srad", "regstairs", "bankstorm"] {
        let w = full_suite(&tiny())
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let base = run(Architecture::Baseline, &w.kernel);
        let vt = run(Architecture::virtual_thread(), &w.kernel);
        assert_eq!(
            base.stats.mem, vt.stats.mem,
            "{name}: identical memory behaviour"
        );
    }
}

#[test]
fn nw_uses_single_warp_ctas() {
    let w = suite(&tiny()).into_iter().find(|w| w.name == "nw").unwrap();
    assert_eq!(w.kernel.warps_per_cta(), 1);
    let r = run(Architecture::Baseline, &w.kernel);
    // Single-warp CTAs: barriers are warp-trivial but still counted.
    assert!(r.stats.barriers > 0);
}

#[test]
fn interpreter_and_simulator_agree_on_dynamic_instruction_mix() {
    // Not just final memory: total executed work must match, per kernel.
    for w in full_suite(&tiny()) {
        let reference = Interpreter::new(&w.kernel).unwrap().run().unwrap();
        for arch in [Architecture::Baseline, Architecture::virtual_thread()] {
            let r = run(arch, &w.kernel);
            assert_eq!(
                r.stats.warp_instrs,
                reference.warp_instrs(),
                "{} under {}",
                w.name,
                arch.label()
            );
        }
    }
}

#[test]
fn scale_controls_work_linearly() {
    let small = suite(&Scale { ctas: 4, iters: 2 });
    let big = suite(&Scale { ctas: 8, iters: 2 });
    for (ws, wb) in small.iter().zip(&big) {
        let rs = Interpreter::new(&ws.kernel).unwrap().run().unwrap();
        let rb = Interpreter::new(&wb.kernel).unwrap().run().unwrap();
        assert!(
            rb.warp_instrs() > rs.warp_instrs(),
            "{}: more CTAs, more work",
            ws.name
        );
    }
}
