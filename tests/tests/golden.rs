//! Golden-stats snapshot tests: every suite kernel × architecture run is
//! serialized to exact-integer JSON and compared against the checked-in
//! snapshot in `tests/golden/`. Any change to simulator timing,
//! scheduling, the memory hierarchy or functional results shows up as a
//! readable line diff here.
//!
//! To accept intentional changes, regenerate the snapshots:
//!
//! ```text
//! VT_BLESS=1 cargo test -q -p vt-tests --test golden
//! ```

use std::fs;
use std::path::PathBuf;
use vt_tests::golden::report_json;
use vt_tests::{all_archs, run};
use vt_workloads::{full_suite, Scale};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// First differing lines of two snapshots, with line numbers — enough to
/// see *which* counter drifted without opening the files.
fn line_diff(got: &str, want: &str) -> String {
    let mut out = String::new();
    let mut shown = 0;
    let (mut g, mut w) = (got.lines(), want.lines());
    let mut line = 0usize;
    loop {
        line += 1;
        match (g.next(), w.next()) {
            (None, None) => break,
            (got_l, want_l) => {
                if got_l != want_l && shown < 12 {
                    out.push_str(&format!(
                        "  line {line}: got  {}\n  line {line}: want {}\n",
                        got_l.unwrap_or("<eof>"),
                        want_l.unwrap_or("<eof>")
                    ));
                    shown += 1;
                }
            }
        }
    }
    if shown == 12 {
        out.push_str("  ... (more differences truncated)\n");
    }
    out
}

#[test]
fn stats_match_golden_snapshots() {
    let bless = std::env::var("VT_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let dir = golden_dir();
    if bless {
        fs::create_dir_all(&dir).expect("create golden dir");
    }

    let mut failures = Vec::new();
    for w in full_suite(&Scale::test()) {
        for arch in all_archs() {
            let report = run(arch, &w.kernel);
            let got = report_json(&report).pretty() + "\n";
            let path = dir.join(format!("{}.{}.json", w.name, report.arch.label()));
            if bless {
                fs::write(&path, &got).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                continue;
            }
            match fs::read_to_string(&path) {
                Ok(want) => {
                    if got != want {
                        failures.push(format!(
                            "{} [{}] drifted from {}:\n{}",
                            w.name,
                            report.arch.label(),
                            path.display(),
                            line_diff(&got, &want)
                        ));
                    }
                }
                Err(e) => failures.push(format!(
                    "{} [{}]: cannot read {} ({e}); run `VT_BLESS=1 cargo test -p \
                     vt-tests --test golden` to create snapshots",
                    w.name,
                    report.arch.label(),
                    path.display()
                )),
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden snapshot(s) drifted:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}
