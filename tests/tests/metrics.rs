//! End-to-end tests of the windowed metrics layer on real suite kernels:
//! window accounting, aggregate/per-SM consistency, checkpoint snapshot
//! round-trips, and a golden snapshot of the Prometheus exposition (the
//! exporter's wire format is a public contract).
//!
//! To accept an intentional exposition change:
//!
//! ```text
//! VT_BLESS=1 cargo test -q -p vt-tests --test metrics
//! ```

use std::fs;
use std::path::PathBuf;
use vt_core::{Architecture, GpuConfig, MetricsRegistry, Report, RunRequest, Session};
use vt_tests::small_config;
use vt_workloads::{suite, Scale};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn run_metered(mut cfg: GpuConfig, kernel: &vt_isa::Kernel, window: u64) -> Report {
    cfg.core.metrics_window = Some(window);
    Session::new(cfg)
        .run(RunRequest::kernel(kernel))
        .and_then(|o| o.completed())
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()))
        .remove(0)
}

/// Window accounting on real kernels: a completed run seals exactly the
/// boundaries strictly inside `[1, cycles]`, every series has one value
/// (or histogram) per sealed window, and per-SM issue series sum to the
/// aggregate window-by-window.
#[test]
fn series_lengths_and_aggregates_hold_across_the_suite() {
    const WINDOW: u64 = 128;
    let cfg = small_config(Architecture::virtual_thread());
    let num_sms = cfg.core.num_sms;
    for w in suite(&Scale::test()) {
        let report = run_metered(cfg.clone(), &w.kernel, WINDOW);
        let m = report.stats.metrics().expect("metrics enabled");
        let sealed = ((report.stats.cycles - 1) / WINDOW) as usize;
        assert_eq!(m.windows() as usize, sealed, "{}: sealed windows", w.name);
        assert_eq!(m.window(), WINDOW, "{}", w.name);

        let agg = m
            .get("warp_instrs", None)
            .expect("aggregate series")
            .values();
        assert_eq!(agg.len(), sealed, "{}", w.name);
        for (k, &agg_k) in agg.iter().enumerate() {
            let per_sm_sum: u64 = (0..num_sms)
                .map(|sm| {
                    m.get("warp_instrs", Some(sm))
                        .expect("per-SM series")
                        .values()[k]
                })
                .sum();
            assert_eq!(
                per_sm_sum, agg_k,
                "{}: window {k}: per-SM issues must sum to the aggregate",
                w.name
            );
        }
        // The issue-balance distribution has one histogram per window
        // with one observation per SM.
        let dist = m.get("sm_issue_balance", None).expect("dist series");
        let hists = dist.histograms();
        assert_eq!(hists.len(), sealed, "{}", w.name);
        for (k, h) in hists.iter().enumerate() {
            assert_eq!(
                h.count,
                u64::from(num_sms),
                "{}: window {k}: one observation per SM",
                w.name
            );
        }
    }
}

/// The registry snapshot (the checkpoint representation) round-trips
/// every series of a real run byte-for-byte.
#[test]
fn registry_snapshot_round_trips_a_real_run() {
    let ws = suite(&Scale::test());
    let w = ws.iter().find(|w| w.name == "kmeans").unwrap();
    let report = run_metered(small_config(Architecture::virtual_thread()), &w.kernel, 64);
    let m = report.stats.metrics().expect("metrics enabled");
    assert!(m.windows() >= 2, "kmeans is long enough for two windows");
    let restored = MetricsRegistry::restore(&m.snapshot()).expect("snapshot restores");
    assert_eq!(&restored, m, "snapshot/restore must be lossless");
    assert_eq!(restored.to_prometheus(), m.to_prometheus());
}

/// Golden snapshot of the Prometheus text exposition for one pinned run
/// (bfs, VT, 4 SMs, 256-cycle windows). The format — metric names, TYPE
/// lines, label shape, bucket boundaries — is what external scrapers
/// parse, so drift must be deliberate.
#[test]
fn prometheus_exposition_matches_golden_snapshot() {
    let bless = std::env::var("VT_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let ws = suite(&Scale::test());
    let w = ws.iter().find(|w| w.name == "bfs").unwrap();
    let report = run_metered(small_config(Architecture::virtual_thread()), &w.kernel, 256);
    let m = report.stats.metrics().expect("metrics enabled");
    assert!(m.windows() > 0);
    let got = m.to_prometheus();
    let path = golden_dir().join("metrics.bfs.vt.prom");
    if bless {
        fs::write(&path, &got).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run `VT_BLESS=1 cargo test -p vt-tests \
             --test metrics` to create it",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "Prometheus exposition drifted from {}",
        path.display()
    );
}
