//! The simulator is a deterministic function of (configuration, kernel):
//! repeated runs must agree cycle-for-cycle, and the workload generators
//! must be reproducible.

use vt_tests::{all_archs, run};
use vt_workloads::{suite, Scale, SyntheticParams};

#[test]
fn repeated_runs_are_cycle_identical() {
    for w in suite(&Scale::test()).into_iter().take(4) {
        for arch in all_archs() {
            let a = run(arch, &w.kernel);
            let b = run(arch, &w.kernel);
            assert_eq!(a.stats, b.stats, "{} under {}", w.name, arch.label());
            assert_eq!(a.mem_image, b.mem_image);
        }
    }
}

#[test]
fn suite_construction_is_reproducible() {
    let a = suite(&Scale::test());
    let b = suite(&Scale::test());
    for (wa, wb) in a.iter().zip(&b) {
        assert_eq!(wa.kernel, wb.kernel, "{}", wa.name);
    }
}

#[test]
fn synthetic_generator_is_reproducible() {
    let p = SyntheticParams {
        ctas: 6,
        ..SyntheticParams::latency_bound()
    };
    assert_eq!(p.build(), p.build());
}

#[test]
fn stats_are_independent_of_prior_runs() {
    // Running kernel A must not perturb a later run of kernel B.
    let ws = suite(&Scale::test());
    let fresh = run(vt_core::Architecture::Baseline, &ws[1].kernel);
    let _warmup = run(vt_core::Architecture::Baseline, &ws[0].kernel);
    let after = run(vt_core::Architecture::Baseline, &ws[1].kernel);
    assert_eq!(fresh.stats, after.stats);
}
