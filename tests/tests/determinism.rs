//! The simulator is a deterministic function of (configuration, kernel):
//! repeated runs must agree cycle-for-cycle, and the workload generators
//! must be reproducible.

use vt_core::{RunRequest, Session};
use vt_tests::{all_archs, run, small_config};
use vt_trace::{to_chrome_json, RingSink};
use vt_workloads::{suite, Scale, SyntheticParams};

#[test]
fn repeated_runs_are_cycle_identical() {
    for w in suite(&Scale::test()).into_iter().take(4) {
        for arch in all_archs() {
            let a = run(arch, &w.kernel);
            let b = run(arch, &w.kernel);
            assert_eq!(a.stats, b.stats, "{} under {}", w.name, arch.label());
            assert_eq!(a.mem_image, b.mem_image);
        }
    }
}

#[test]
fn suite_construction_is_reproducible() {
    let a = suite(&Scale::test());
    let b = suite(&Scale::test());
    for (wa, wb) in a.iter().zip(&b) {
        assert_eq!(wa.kernel, wb.kernel, "{}", wa.name);
    }
}

#[test]
fn synthetic_generator_is_reproducible() {
    let p = SyntheticParams {
        ctas: 6,
        ..SyntheticParams::latency_bound()
    };
    assert_eq!(p.build(), p.build());
}

#[test]
fn traced_replays_are_byte_identical() {
    // Tracing rides on the same deterministic clock as the stats: two
    // traced runs of the same (config, kernel) must agree on every event
    // and on the exported Chrome-trace JSON, byte for byte.
    let ws = suite(&Scale::test());
    for w in ws.iter().take(2) {
        for arch in all_archs() {
            let mut runs = (0..2).map(|_| {
                let mut session =
                    Session::new(small_config(arch)).with_sink(RingSink::new(1 << 22));
                let report = session
                    .run(RunRequest::kernel(&w.kernel))
                    .and_then(|o| o.completed())
                    .expect("traced run succeeds")
                    .remove(0);
                let sink = session.into_sink();
                assert_eq!(sink.dropped(), 0);
                (report, sink.into_events())
            });
            let (ra, ea) = runs.next().unwrap();
            let (rb, eb) = runs.next().unwrap();
            assert_eq!(ra.stats, rb.stats, "{} under {}", w.name, arch.label());
            assert_eq!(ea, eb, "{} under {}", w.name, arch.label());
            assert_eq!(
                to_chrome_json(&ea).compact().into_bytes(),
                to_chrome_json(&eb).compact().into_bytes(),
                "{} under {}",
                w.name,
                arch.label()
            );
        }
    }
}

#[test]
fn stats_are_independent_of_prior_runs() {
    // Running kernel A must not perturb a later run of kernel B.
    let ws = suite(&Scale::test());
    let fresh = run(vt_core::Architecture::Baseline, &ws[1].kernel);
    let _warmup = run(vt_core::Architecture::Baseline, &ws[0].kernel);
    let after = run(vt_core::Architecture::Baseline, &ws[1].kernel);
    assert_eq!(fresh.stats, after.stats);
}
