//! Differential tests of the parallel execution engine: for every suite
//! kernel and architecture, runs sharded across 2, 4 and 8 worker
//! threads must be *bit-identical* to the sequential run — same
//! statistics, same trace event stream, same final memory, same idle
//! accounting. This is the contract that makes `--threads N` safe to use
//! for every experiment in the repo.
//!
//! Note the worker counts here deliberately oversubscribe small hosts:
//! determinism must not depend on how the OS schedules the pool.

use vt_core::{Pool, Report, RunRequest, Session};
use vt_isa::Kernel;
use vt_tests::{all_archs, small_config};
use vt_trace::{to_chrome_json, BufSink, TimedEvent};
use vt_workloads::{full_suite, Scale};

fn run_traced_on(
    arch: vt_core::Architecture,
    kernel: &Kernel,
    threads: Option<usize>,
) -> (Report, Vec<TimedEvent>) {
    let mut events = Vec::new();
    let mut session = Session::new(small_config(arch)).with_sink(BufSink(&mut events));
    if let Some(n) = threads {
        session = session.with_pool(Pool::new(n));
    }
    let report = session
        .run(RunRequest::kernel(kernel))
        .and_then(|o| o.completed())
        .unwrap_or_else(|e| panic!("{} under {}: {e}", kernel.name(), arch.label()))
        .remove(0);
    drop(session);
    (report, events)
}

#[test]
fn thread_count_never_changes_results() {
    for w in full_suite(&Scale::test()) {
        for arch in all_archs() {
            let (seq_report, seq_events) = run_traced_on(arch, &w.kernel, None);
            for threads in [2, 4, 8] {
                let (par_report, par_events) = run_traced_on(arch, &w.kernel, Some(threads));
                let label = format!("{} [{}] at {} threads", w.name, arch.label(), threads);
                assert_eq!(par_report.stats, seq_report.stats, "stats differ: {label}");
                assert_eq!(
                    par_report.mem_image, seq_report.mem_image,
                    "memory image differs: {label}"
                );
                assert_eq!(
                    par_events, seq_events,
                    "trace event stream differs: {label}"
                );
            }
        }
    }
}

/// The exported Chrome trace — what a human actually loads in Perfetto —
/// must also be byte-identical, not just the in-memory events.
#[test]
fn chrome_traces_are_byte_identical_across_thread_counts() {
    for w in full_suite(&Scale::test()).iter().take(3) {
        for arch in all_archs() {
            let (_, seq_events) = run_traced_on(arch, &w.kernel, None);
            let (_, par_events) = run_traced_on(arch, &w.kernel, Some(4));
            assert_eq!(
                to_chrome_json(&par_events).compact(),
                to_chrome_json(&seq_events).compact(),
                "{} [{}]",
                w.name,
                arch.label()
            );
        }
    }
}

/// The idle-accounting identity holds under the parallel engine: every
/// SM-cycle is either an issue cycle or lands in exactly one idle bucket.
#[test]
fn idle_identity_holds_under_parallel_engine() {
    for w in full_suite(&Scale::test()) {
        for arch in all_archs() {
            let mut session = Session::new(small_config(arch)).with_pool(Pool::new(4));
            let report = session
                .run(RunRequest::kernel(&w.kernel))
                .and_then(|o| o.completed())
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, arch.label()))
                .remove(0);
            let s = &report.stats;
            assert_eq!(
                s.idle.total() + s.issue_cycles,
                s.occupancy.sm_cycles,
                "{} [{}]: idle + issue must cover every SM-cycle",
                w.name,
                arch.label()
            );
        }
    }
}
