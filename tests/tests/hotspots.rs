//! Per-PC hotspot profiles: the per-instruction conservation identity
//! (per-PC issue and stall buckets sum exactly to the kernel-level CPI
//! stack, reason by reason) across the full suite × every architecture
//! × 1/2/4 workers, bit-identical merges at any worker count, survival
//! of random checkpoint/resume cuts, and the zero-perturbation guarantee
//! that profiling never changes the stats it observes.

use std::fs;
use std::path::PathBuf;
use vt_bench::hotspot::ProfileRecord;
use vt_core::{
    Checkpoint, CpiStack, PcProfile, Pool, Report, RunBudget, RunRequest, RunStats, Session,
    SessionOutcome, StallReason,
};
use vt_isa::Kernel;
use vt_prng::Prng;
use vt_tests::small_config;
use vt_workloads::{full_suite, Scale};

/// The kernel-level stack bucket a stall reason feeds.
fn stack_stall(cpi: &CpiStack, r: StallReason) -> u64 {
    match r {
        StallReason::Memory => cpi.stall_memory,
        StallReason::Pipeline => cpi.stall_pipeline,
        StallReason::Barrier => cpi.stall_barrier,
        StallReason::Swap => cpi.stall_swap,
        StallReason::Structural => cpi.stall_structural,
    }
}

/// Per-PC conservation: the profile's issue cycles sum exactly to the
/// stack's `issued` bucket, and for every stall reason the per-PC
/// charges plus the unattributed remainder reproduce the kernel-level
/// bucket to the cycle.
fn assert_pc_conserved(stats: &RunStats, label: &str) -> PcProfile {
    let profile = stats
        .hotspots
        .clone()
        .unwrap_or_else(|| panic!("{label}: profiled run carries no hotspot profile"));
    let cpi = stats.cpi_stack();
    assert_eq!(
        profile.issued_total(),
        cpi.issued,
        "{label}: per-PC issue cycles must sum to the stack's issued bucket"
    );
    for r in StallReason::ALL {
        assert_eq!(
            profile.stall_total(r) + profile.unattributed[r.index()],
            stack_stall(&cpi, r),
            "{label}: per-PC {} + unattributed must reproduce the stack bucket",
            r.name()
        );
    }
    profile
}

fn profiled_request(kernel: &Kernel) -> RunRequest<'_> {
    RunRequest::kernel(kernel)
}

fn run_profiled(kernel: &Kernel, cfg: vt_core::GpuConfig, threads: Option<usize>) -> Report {
    let mut session = Session::new(cfg);
    if let Some(n) = threads {
        session = session.with_pool(Pool::new(n));
    }
    session
        .run(profiled_request(kernel))
        .and_then(|o| o.completed())
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()))
        .remove(0)
}

/// For every suite kernel × architecture × 1/2/4 workers: the per-PC
/// buckets sum exactly to the kernel-level `cpi_stack()`, the profile
/// covers every instruction, and the merged profile is bit-identical at
/// every worker count.
#[test]
fn suite_per_pc_buckets_conserve_across_archs_and_workers() {
    for w in full_suite(&Scale::test()) {
        for arch in vt_tests::all_archs() {
            let mut cfg = small_config(arch);
            cfg.core.profile = true;
            let label = format!("{} under {}", w.name, arch.label());

            let want = run_profiled(&w.kernel, cfg.clone(), None);
            let profile = assert_pc_conserved(&want.stats, &label);
            assert_eq!(
                profile.len(),
                w.kernel.program().len(),
                "{label}: one counter row per instruction"
            );

            for threads in [2usize, 4] {
                let par = run_profiled(&w.kernel, cfg.clone(), Some(threads));
                let par_profile =
                    assert_pc_conserved(&par.stats, &format!("{label} on {threads} workers"));
                assert_eq!(
                    par_profile, profile,
                    "{label}: merged profile differs on {threads} workers"
                );
                assert_eq!(par.stats, want.stats, "{label} on {threads} workers");
            }
        }
    }
}

/// Random checkpoint/resume cuts: partial profiles already satisfy the
/// conservation identity, and the resumed run stitches back to the
/// uninterrupted profile byte-identically (snapshot equality) at both
/// sequential and parallel resume.
#[test]
fn conservation_survives_random_checkpoint_cuts() {
    let mut rng = Prng::new(0x907_5907_5907);
    for w in full_suite(&Scale::test()) {
        let arch = vt_tests::all_archs()[rng.gen_range(0..4) as usize];
        let mut cfg = small_config(arch);
        cfg.core.profile = true;
        let label = format!("{} under {}", w.name, arch.label());

        let want = run_profiled(&w.kernel, cfg.clone(), None);
        let want_profile = assert_pc_conserved(&want.stats, &label);

        let limit = want.stats.cycles.clamp(2, u64::from(u32::MAX)) as u32;
        let cut = u64::from(1 + rng.gen_range(0..limit - 1));
        let mut session = Session::new(cfg.clone());
        let SessionOutcome::Truncated { truncation, .. } = session
            .run(
                profiled_request(&w.kernel)
                    .with_budget(RunBudget::unlimited().with_max_cycles(cut)),
            )
            .unwrap_or_else(|e| panic!("{label} cut {cut}: {e}"))
        else {
            panic!("{label}: expected truncation at cycle {cut}");
        };
        assert_pc_conserved(&truncation.stats, &format!("{label} cut {cut}"));

        // The profile must round-trip through the checkpoint text and
        // stitch back to the uninterrupted run at any worker count.
        let ckpt = Checkpoint::parse(&truncation.checkpoint.to_text())
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        for threads in [None, Some(2usize)] {
            let mut session = Session::new(cfg.clone());
            if let Some(n) = threads {
                session = session.with_pool(Pool::new(n));
            }
            let resumed = session
                .run(profiled_request(&w.kernel).resume_from(&ckpt))
                .and_then(|o| o.completed())
                .unwrap_or_else(|e| panic!("{label} resume: {e}"))
                .remove(0);
            let resumed_profile = assert_pc_conserved(&resumed.stats, &format!("{label} resumed"));
            assert_eq!(
                resumed_profile.snapshot().pretty(),
                want_profile.snapshot().pretty(),
                "{label}: resumed profile diverges from the uninterrupted run"
            );
            assert_eq!(resumed.stats, want.stats, "{label}: resumed stats diverge");
        }
    }
}

/// Exact-integer golden profile records for three archetypal suite
/// kernels (memory-bound, compute-bound, divergence-heavy) under the
/// virtual-thread architecture: `tests/golden/hotspots.<kernel>.json`.
/// Any per-PC attribution drift shows up as an integer diff. Re-bless
/// with `VT_BLESS=1 cargo test -q -p vt-tests --test hotspots` (or
/// `tools/bless.sh`).
#[test]
fn archetype_profiles_match_goldens() {
    let bless = std::env::var("VT_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden");
    let arch = vt_core::Architecture::virtual_thread();
    for w in full_suite(&Scale::test()) {
        if !["bfs", "sgemm", "divtree"].contains(&w.name) {
            continue;
        }
        let mut cfg = small_config(arch);
        cfg.core.profile = true;
        let report = run_profiled(&w.kernel, cfg, None);
        let rec = ProfileRecord::from_run(w.name, arch.label(), w.kernel.program(), &report.stats)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        rec.check_conservation()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let got = rec.to_json().pretty();
        let path = golden_dir.join(format!("hotspots.{}.json", w.name));
        if bless {
            fs::write(&path, &got).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            continue;
        }
        let want = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {} ({e}); run `VT_BLESS=1 cargo test -p vt-tests \
                 --test hotspots` to create it",
                path.display()
            )
        });
        assert_eq!(
            got,
            want,
            "{}: per-PC profile drifted from {}",
            w.name,
            path.display()
        );
        // The golden also round-trips through the loader, which
        // re-checks conservation on the way in.
        let parsed = ProfileRecord::load(path.to_str().unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(parsed, rec, "{}: record round-trip", w.name);
    }
}

/// Profiling is an observer: with `profile` off the stats are the
/// pre-profiler `RunStats` (no hotspot field), and a profiled run's
/// stats minus its profile are bit-identical to an unprofiled run's.
#[test]
fn profiling_never_perturbs_the_run() {
    for w in full_suite(&Scale::test()).into_iter().take(4) {
        for arch in vt_tests::all_archs() {
            let label = format!("{} under {}", w.name, arch.label());
            let plain = vt_tests::run(arch, &w.kernel);
            assert!(
                plain.stats.hotspots.is_none(),
                "{label}: unprofiled runs must not allocate a profile"
            );

            let mut cfg = small_config(arch);
            cfg.core.profile = true;
            let mut profiled = run_profiled(&w.kernel, cfg, None);
            assert!(profiled.stats.hotspots.is_some(), "{label}");
            profiled.stats.hotspots = None;
            assert_eq!(
                profiled.stats, plain.stats,
                "{label}: profiling perturbed the observed stats"
            );
            assert_eq!(
                profiled.mem_image.as_words(),
                plain.mem_image.as_words(),
                "{label}: profiling perturbed the memory image"
            );
        }
    }
}
