#!/bin/bash
# Regenerates every table and figure of the paper at full scale.
set -e
cd "$(dirname "$0")"
BINS="tab01_config tab02_benchmarks tab03_overhead tab04_energy fig01_limiter fig02_utilization fig03_speedup fig04_alternatives fig05_slots_sweep fig06_swap_latency fig07_scheduler fig08_idle_breakdown fig09_trigger_ablation fig10_timeline fig11_cache_sensitivity fig12_latency_sensitivity fig13_adaptive_throttle"
for b in $BINS; do
  echo "=============================================================="
  echo "== $b"
  echo "=============================================================="
  cargo run --release -q -p vt-bench --bin "$b" -- "$@" 2>/dev/null
  echo
done
