#!/bin/bash
# Regenerates every table and figure of the paper at full scale.
#
# VT_THREADS controls the worker-pool size of the parallel sweep stage
# (default: the machine's available parallelism; 1 = the exact sequential
# code path). Any value produces bit-identical statistics.
set -e
cd "$(dirname "$0")"
VT_THREADS="${VT_THREADS:-0}"

echo "=============================================================="
echo "== vtsweep (kernel x architecture grid, VT_THREADS=$VT_THREADS)"
echo "=============================================================="
# Figure/table flags like --quick are not forwarded here: vtsweep takes
# its own options. --check re-verifies parallel == sequential on the fly.
cargo run --release -q -p vt-bench --bin vtsweep -- --threads "$VT_THREADS" --check 2>/dev/null
echo

BINS="tab01_config tab02_benchmarks tab03_overhead tab04_energy fig01_limiter fig02_utilization fig03_speedup fig04_alternatives fig05_slots_sweep fig06_swap_latency fig07_scheduler fig08_idle_breakdown fig09_trigger_ablation fig10_timeline fig11_cache_sensitivity fig12_latency_sensitivity fig13_adaptive_throttle"
for b in $BINS; do
  echo "=============================================================="
  echo "== $b"
  echo "=============================================================="
  cargo run --release -q -p vt-bench --bin "$b" -- "$@" 2>/dev/null
  echo
done
